//! Bottom-up evaluation of stratified programs.
//!
//! Each stratum is computed to fixpoint by naive iteration (re-deriving
//! rules until nothing new appears); negated literals consult only fully
//! computed lower strata or EDB relations, giving the standard stratified
//! semantics. For the non-recursive two-strata programs of Theorem 3.4 the
//! fixpoint loop converges in one pass per stratum.

use crate::ast::{DTerm, Literal, Program};
use crate::safety::{check_program, SafetyError};
use crate::stratify::{stratify, StratifyError};
use causality_engine::{Database, EngineError, Nature, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors raised by program evaluation.
#[derive(Clone, Debug)]
pub enum DatalogError {
    /// A rule violates range restriction.
    Safety(SafetyError),
    /// The program is not stratifiable.
    Stratify(StratifyError),
    /// An EDB literal referenced a missing relation or wrong arity.
    Engine(EngineError),
    /// An IDB literal used an endogenous/exogenous view.
    NatureOnIdb {
        /// The predicate name.
        predicate: String,
    },
    /// An IDB predicate was used with two different arities.
    ArityConflict {
        /// The predicate name.
        predicate: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Safety(e) => write!(f, "{e}"),
            DatalogError::Stratify(e) => write!(f, "{e}"),
            DatalogError::Engine(e) => write!(f, "{e}"),
            DatalogError::NatureOnIdb { predicate } => {
                write!(
                    f,
                    "IDB predicate `{predicate}` cannot carry an endo/exo view"
                )
            }
            DatalogError::ArityConflict { predicate } => {
                write!(
                    f,
                    "IDB predicate `{predicate}` used with conflicting arities"
                )
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<SafetyError> for DatalogError {
    fn from(e: SafetyError) -> Self {
        DatalogError::Safety(e)
    }
}

impl From<StratifyError> for DatalogError {
    fn from(e: StratifyError) -> Self {
        DatalogError::Stratify(e)
    }
}

impl From<EngineError> for DatalogError {
    fn from(e: EngineError) -> Self {
        DatalogError::Engine(e)
    }
}

/// The computed IDB relations.
#[derive(Clone, Debug, Default)]
pub struct DatalogResult {
    relations: HashMap<String, Vec<Tuple>>,
}

impl DatalogResult {
    /// The tuples of an IDB predicate (sorted, deduplicated). Unknown
    /// predicates yield the empty slice.
    pub fn tuples(&self, predicate: &str) -> &[Tuple] {
        self.relations
            .get(predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the predicate derived the given tuple.
    pub fn contains(&self, predicate: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(predicate)
            .is_some_and(|ts| ts.binary_search(tuple).is_ok())
    }

    /// Predicate names present.
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }
}

/// Evaluate a stratified program over a database.
pub fn evaluate_program(db: &Database, program: &Program) -> Result<DatalogResult, DatalogError> {
    check_program(program)?;
    let (strata, stratum_count) = stratify(program)?;
    validate_literals(db, program)?;

    let mut idb: HashMap<String, HashSet<Tuple>> = HashMap::new();
    for p in program.idb_predicates() {
        idb.insert(p.to_string(), HashSet::new());
    }

    for s in 0..stratum_count {
        let rules: Vec<_> = program
            .rules
            .iter()
            .filter(|r| strata[&r.head] == s)
            .collect();
        // Naive fixpoint for this stratum.
        loop {
            let mut changed = false;
            for rule in &rules {
                let derived = derive(db, &idb, rule)?;
                let target = idb.get_mut(&rule.head).expect("idb initialised");
                for t in derived {
                    if target.insert(t) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    let mut relations = HashMap::new();
    for (name, set) in idb {
        let mut v: Vec<Tuple> = set.into_iter().collect();
        v.sort();
        relations.insert(name, v);
    }
    Ok(DatalogResult { relations })
}

fn validate_literals(db: &Database, program: &Program) -> Result<(), DatalogError> {
    let mut idb_arity: HashMap<String, usize> = HashMap::new();
    let mut check_idb = |name: &str, arity: usize| -> Result<(), DatalogError> {
        match idb_arity.get(name) {
            Some(&a) if a != arity => Err(DatalogError::ArityConflict {
                predicate: name.to_string(),
            }),
            _ => {
                idb_arity.insert(name.to_string(), arity);
                Ok(())
            }
        }
    };
    for rule in &program.rules {
        check_idb(&rule.head, rule.head_terms.len())?;
    }
    for rule in &program.rules {
        for lit in &rule.body {
            if program.is_idb(&lit.predicate) {
                if lit.nature != Nature::Any {
                    return Err(DatalogError::NatureOnIdb {
                        predicate: lit.predicate.clone(),
                    });
                }
                check_idb(&lit.predicate, lit.terms.len())?;
            } else {
                let rel = db.require_relation(&lit.predicate)?;
                let expected = db.relation(rel).schema().arity();
                if expected != lit.terms.len() {
                    return Err(DatalogError::Engine(EngineError::ArityMismatch {
                        relation: lit.predicate.clone(),
                        expected,
                        found: lit.terms.len(),
                    }));
                }
            }
        }
    }
    Ok(())
}

type Bindings = HashMap<String, Value>;

/// Derive all head tuples of one rule under the current IDB state.
fn derive(
    db: &Database,
    idb: &HashMap<String, HashSet<Tuple>>,
    rule: &crate::ast::Rule,
) -> Result<Vec<Tuple>, DatalogError> {
    // Order: positive literals first (in source order), then negated ones.
    let positives: Vec<&Literal> = rule.body.iter().filter(|l| !l.negated).collect();
    let negatives: Vec<&Literal> = rule.body.iter().filter(|l| l.negated).collect();
    let mut out = Vec::new();
    let mut bindings: Bindings = HashMap::new();
    join(db, idb, &positives, 0, &mut bindings, &mut |bindings| {
        for lit in &negatives {
            if literal_holds(db, idb, lit, bindings) {
                return; // negated literal satisfied positively → rule blocked
            }
        }
        let tuple: Tuple = rule
            .head_terms
            .iter()
            .map(|t| match t {
                DTerm::Var(v) => bindings[v].clone(),
                DTerm::Const(c) => c.clone(),
            })
            .collect();
        out.push(tuple);
    });
    Ok(out)
}

fn join(
    db: &Database,
    idb: &HashMap<String, HashSet<Tuple>>,
    literals: &[&Literal],
    depth: usize,
    bindings: &mut Bindings,
    emit: &mut dyn FnMut(&Bindings),
) {
    if depth == literals.len() {
        emit(bindings);
        return;
    }
    let lit = literals[depth];
    let try_tuple = |tuple: &Tuple, bindings: &mut Bindings| -> Option<Vec<String>> {
        let mut added = Vec::new();
        for (term, val) in lit.terms.iter().zip(tuple.values()) {
            match term {
                DTerm::Const(c) => {
                    if c != val {
                        for a in &added {
                            bindings.remove(a);
                        }
                        return None;
                    }
                }
                DTerm::Var(v) => match bindings.get(v) {
                    Some(bound) => {
                        if bound != val {
                            for a in &added {
                                bindings.remove(a);
                            }
                            return None;
                        }
                    }
                    None => {
                        bindings.insert(v.clone(), val.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        Some(added)
    };

    if let Some(set) = idb.get(&lit.predicate) {
        for tuple in set {
            if let Some(added) = try_tuple(tuple, bindings) {
                join(db, idb, literals, depth + 1, bindings, emit);
                for a in added {
                    bindings.remove(&a);
                }
            }
        }
    } else {
        let rel = db
            .relation_id(&lit.predicate)
            .expect("validated EDB relation");
        for (_, tuple, endo) in db.relation(rel).iter() {
            match lit.nature {
                Nature::Endo if !endo => continue,
                Nature::Exo if endo => continue,
                _ => {}
            }
            if let Some(added) = try_tuple(tuple, bindings) {
                join(db, idb, literals, depth + 1, bindings, emit);
                for a in added {
                    bindings.remove(&a);
                }
            }
        }
    }
}

/// Check a fully bound literal (used for negation).
fn literal_holds(
    db: &Database,
    idb: &HashMap<String, HashSet<Tuple>>,
    lit: &Literal,
    bindings: &Bindings,
) -> bool {
    let tuple: Tuple = lit
        .terms
        .iter()
        .map(|t| match t {
            DTerm::Var(v) => bindings[v].clone(),
            DTerm::Const(c) => c.clone(),
        })
        .collect();
    if let Some(set) = idb.get(&lit.predicate) {
        return set.contains(&tuple);
    }
    let rel = db
        .relation_id(&lit.predicate)
        .expect("validated EDB relation");
    match db.relation(rel).find(&tuple) {
        None => false,
        Some(row) => {
            let endo = db.relation(rel).is_endogenous(row);
            match lit.nature {
                Nature::Endo => endo,
                Nature::Exo => !endo,
                Nature::Any => true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Rule;
    use causality_engine::{tup, Schema};

    fn lit(pred: &str, nature: Nature, terms: Vec<DTerm>) -> Literal {
        Literal::pos(pred, nature, terms)
    }

    fn v(name: &str) -> DTerm {
        DTerm::var(name)
    }

    /// Example 3.5's database: R = {(a4,a3),(a3,a3)} with Rn = {(a3,a3)},
    /// Rx = {(a4,a3)}; S = Sn = {a3}. The program must derive CR = ∅ and
    /// CS = {a3}.
    #[test]
    fn example_3_5_evaluation() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.insert_exo(r, tup!["a4", "a3"]);
        db.insert_endo(r, tup!["a3", "a3"]);
        db.insert_endo(s, tup!["a3"]);

        let program = Program::new(vec![
            Rule::new(
                "I",
                vec![v("y")],
                vec![
                    lit("R", Nature::Exo, vec![v("x"), v("y")]),
                    lit("S", Nature::Endo, vec![v("y")]),
                ],
            ),
            Rule::new(
                "CR",
                vec![v("x"), v("y")],
                vec![
                    lit("R", Nature::Endo, vec![v("x"), v("y")]),
                    lit("S", Nature::Endo, vec![v("y")]),
                    Literal::neg("I", Nature::Any, vec![v("y")]),
                ],
            ),
            Rule::new(
                "CS",
                vec![v("y")],
                vec![
                    lit("R", Nature::Endo, vec![v("x"), v("y")]),
                    lit("S", Nature::Endo, vec![v("y")]),
                    Literal::neg("I", Nature::Any, vec![v("y")]),
                ],
            ),
            Rule::new(
                "CS",
                vec![v("y")],
                vec![
                    lit("R", Nature::Exo, vec![v("x"), v("y")]),
                    lit("S", Nature::Endo, vec![v("y")]),
                ],
            ),
        ]);

        let result = evaluate_program(&db, &program).unwrap();
        assert_eq!(result.tuples("I"), &[tup!["a3"]]);
        assert!(
            result.tuples("CR").is_empty(),
            "R(a3,a3) is redundant, not a cause"
        );
        assert_eq!(result.tuples("CS"), &[tup!["a3"]]);
    }

    #[test]
    fn projection_and_constants() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        db.insert_endo(r, tup![1, 10]);
        db.insert_endo(r, tup![2, 20]);
        let program = Program::new(vec![Rule::new(
            "P",
            vec![v("y"), DTerm::cst(99)],
            vec![lit("R", Nature::Any, vec![DTerm::cst(1), v("y")])],
        )]);
        let result = evaluate_program(&db, &program).unwrap();
        assert_eq!(result.tuples("P"), &[tup![10, 99]]);
        assert!(result.contains("P", &tup![10, 99]));
        assert!(!result.contains("P", &tup![20, 99]));
    }

    #[test]
    fn transitive_closure_fixpoint() {
        let mut db = Database::new();
        let e = db.add_relation(Schema::new("E", &["x", "y"]));
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert_endo(e, tup![a, b]);
        }
        let program = Program::new(vec![
            Rule::new(
                "T",
                vec![v("x"), v("y")],
                vec![lit("E", Nature::Any, vec![v("x"), v("y")])],
            ),
            Rule::new(
                "T",
                vec![v("x"), v("z")],
                vec![
                    lit("T", Nature::Any, vec![v("x"), v("y")]),
                    lit("E", Nature::Any, vec![v("y"), v("z")]),
                ],
            ),
        ]);
        let result = evaluate_program(&db, &program).unwrap();
        assert_eq!(result.tuples("T").len(), 6); // 3 + 2 + 1 pairs
        assert!(result.contains("T", &tup![1, 4]));
    }

    #[test]
    fn stratified_negation_set_difference() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        let s = db.add_relation(Schema::new("S", &["x"]));
        db.insert_endo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        db.insert_endo(s, tup![2]);
        // Diff(x) :- R(x), ¬S(x).
        let program = Program::new(vec![Rule::new(
            "Diff",
            vec![v("x")],
            vec![
                lit("R", Nature::Any, vec![v("x")]),
                Literal::neg("S", Nature::Any, vec![v("x")]),
            ],
        )]);
        let result = evaluate_program(&db, &program).unwrap();
        assert_eq!(result.tuples("Diff"), &[tup![1]]);
    }

    #[test]
    fn negation_against_idb_predicate() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_endo(r, tup![1]);
        db.insert_endo(r, tup![2]);
        // Bad(x) :- R(x) with x=1; Good(x) :- R(x), ¬Bad(x).
        let program = Program::new(vec![
            Rule::new(
                "Bad",
                vec![v("x")],
                vec![
                    lit("R", Nature::Any, vec![DTerm::cst(1)]),
                    lit("R", Nature::Any, vec![v("x")]),
                ],
            ),
            Rule::new(
                "Good",
                vec![v("x")],
                vec![
                    lit("R", Nature::Any, vec![v("x")]),
                    Literal::neg("Bad", Nature::Any, vec![v("x")]),
                ],
            ),
        ]);
        let result = evaluate_program(&db, &program).unwrap();
        // Bad derives {1, 2} (the constant literal only gates firing).
        assert_eq!(result.tuples("Bad").len(), 2);
        assert!(result.tuples("Good").is_empty());
    }

    #[test]
    fn negated_exogenous_view() {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x"]));
        db.insert_endo(r, tup![1]);
        db.insert_exo(r, tup![2]);
        // OnlyEndo(x) :- R^n(x), ¬R^x(x): true for 1 (2 is exo).
        let program = Program::new(vec![Rule::new(
            "OnlyEndo",
            vec![v("x")],
            vec![
                lit("R", Nature::Endo, vec![v("x")]),
                Literal::neg("R", Nature::Exo, vec![v("x")]),
            ],
        )]);
        let result = evaluate_program(&db, &program).unwrap();
        assert_eq!(result.tuples("OnlyEndo"), &[tup![1]]);
    }

    #[test]
    fn error_paths() {
        let db = Database::new();
        // Unsafe rule.
        let p = Program::new(vec![Rule::new("H", vec![v("z")], vec![])]);
        assert!(matches!(
            evaluate_program(&db, &p),
            Err(DatalogError::Safety(_))
        ));
        // Unknown EDB relation.
        let p = Program::new(vec![Rule::new(
            "H",
            vec![v("x")],
            vec![lit("Nope", Nature::Any, vec![v("x")])],
        )]);
        assert!(matches!(
            evaluate_program(&db, &p),
            Err(DatalogError::Engine(EngineError::UnknownRelation(_)))
        ));
        // Nature on IDB.
        let p = Program::new(vec![
            Rule::new("A", vec![v("x")], vec![lit("R", Nature::Any, vec![v("x")])]),
            Rule::new(
                "B",
                vec![v("x")],
                vec![lit("A", Nature::Endo, vec![v("x")])],
            ),
        ]);
        let mut db2 = Database::new();
        db2.add_relation(Schema::new("R", &["x"]));
        assert!(matches!(
            evaluate_program(&db2, &p),
            Err(DatalogError::NatureOnIdb { .. })
        ));
        // Arity conflict on IDB.
        let p = Program::new(vec![
            Rule::new("A", vec![v("x")], vec![lit("R", Nature::Any, vec![v("x")])]),
            Rule::new(
                "B",
                vec![v("x")],
                vec![lit("A", Nature::Any, vec![v("x"), v("y")])],
            ),
        ]);
        assert!(matches!(
            evaluate_program(&db2, &p),
            Err(DatalogError::ArityConflict { .. })
        ));
        // Not stratifiable.
        let p = Program::new(vec![Rule::new(
            "P",
            vec![v("x")],
            vec![
                lit("R", Nature::Any, vec![v("x")]),
                Literal::neg("P", Nature::Any, vec![v("x")]),
            ],
        )]);
        assert!(matches!(
            evaluate_program(&db2, &p),
            Err(DatalogError::Stratify(_))
        ));
    }

    #[test]
    fn empty_program_empty_result() {
        let db = Database::new();
        let result = evaluate_program(&db, &Program::default()).unwrap();
        assert_eq!(result.predicates().count(), 0);
        assert!(result.tuples("anything").is_empty());
    }
}
