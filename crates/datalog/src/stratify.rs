//! Stratification.
//!
//! Negation is evaluated stratum by stratum: a rule with `¬P` in its body
//! may only fire once `P` is fully computed. Formally, assign each IDB
//! predicate a stratum such that positive dependencies do not increase the
//! stratum and negative dependencies strictly increase it; a program is
//! stratifiable iff no cycle goes through a negative edge.
//!
//! Theorem 3.4's cause programs use exactly two strata (`I_{s,e}` at
//! stratum 0, the `C_Ri` at stratum 1); the implementation handles the
//! general case.

use crate::ast::Program;
use std::collections::HashMap;
use std::fmt;

/// Stratification failure: some cycle passes through negation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StratifyError {
    /// A predicate on the offending cycle.
    pub predicate: String,
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program is not stratifiable: predicate `{}` depends negatively on itself",
            self.predicate
        )
    }
}

impl std::error::Error for StratifyError {}

/// Assign strata to IDB predicates. Returns, for each IDB predicate, its
/// stratum (0-based), plus the total number of strata.
pub fn stratify(program: &Program) -> Result<(HashMap<String, usize>, usize), StratifyError> {
    let idb: Vec<&str> = program.idb_predicates();
    let mut stratum: HashMap<String, usize> =
        idb.iter().map(|p| ((*p).to_string(), 0usize)).collect();
    let n = idb.len().max(1);

    // Bellman-Ford-style relaxation: at most |IDB| rounds, else a negative
    // cycle exists.
    for round in 0..=n {
        let mut changed = false;
        for rule in &program.rules {
            let head_stratum = stratum[&rule.head];
            for lit in &rule.body {
                let Some(&body_stratum) = stratum.get(&lit.predicate) else {
                    continue; // EDB
                };
                let required = if lit.negated {
                    body_stratum + 1
                } else {
                    body_stratum
                };
                if head_stratum < required {
                    stratum.insert(rule.head.clone(), required);
                    changed = true;
                }
            }
        }
        if !changed {
            let max = stratum.values().copied().max().unwrap_or(0);
            return Ok((stratum, max + 1));
        }
        if round == n {
            break;
        }
    }
    // Still changing after |IDB| rounds: find a predicate with an inflated
    // stratum to report.
    let offender = stratum
        .iter()
        .max_by_key(|(_, &s)| s)
        .map(|(p, _)| p.clone())
        .unwrap_or_default();
    Err(StratifyError {
        predicate: offender,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DTerm, Literal, Program, Rule};
    use causality_engine::Nature;

    fn lit(pred: &str, neg: bool) -> Literal {
        let terms = vec![DTerm::var("x")];
        if neg {
            Literal::neg(pred, Nature::Any, terms)
        } else {
            Literal::pos(pred, Nature::Any, terms)
        }
    }

    fn rule(head: &str, body: Vec<Literal>) -> Rule {
        Rule::new(head, vec![DTerm::var("x")], body)
    }

    #[test]
    fn positive_program_is_single_stratum() {
        let p = Program::new(vec![
            rule("A", vec![lit("R", false)]),
            rule("B", vec![lit("A", false)]),
        ]);
        let (strata, count) = stratify(&p).unwrap();
        assert_eq!(count, 1);
        assert_eq!(strata["A"], 0);
        assert_eq!(strata["B"], 0);
    }

    #[test]
    fn negation_pushes_up_a_stratum() {
        // The Theorem 3.4 shape: I at stratum 0, C at stratum 1.
        let p = Program::new(vec![
            rule("I", vec![lit("R", false)]),
            rule("C", vec![lit("R", false), lit("I", true)]),
        ]);
        let (strata, count) = stratify(&p).unwrap();
        assert_eq!(count, 2);
        assert_eq!(strata["I"], 0);
        assert_eq!(strata["C"], 1);
    }

    #[test]
    fn chained_negation_builds_three_strata() {
        let p = Program::new(vec![
            rule("A", vec![lit("R", false)]),
            rule("B", vec![lit("A", true)]),
            rule("C", vec![lit("B", true)]),
        ]);
        let (strata, count) = stratify(&p).unwrap();
        assert_eq!(count, 3);
        assert_eq!((strata["A"], strata["B"], strata["C"]), (0, 1, 2));
    }

    #[test]
    fn positive_recursion_is_fine() {
        let p = Program::new(vec![
            rule("T", vec![lit("E", false)]),
            rule("T", vec![lit("T", false), lit("E", false)]),
        ]);
        let (strata, count) = stratify(&p).unwrap();
        assert_eq!(count, 1);
        assert_eq!(strata["T"], 0);
    }

    #[test]
    fn negative_self_cycle_rejected() {
        let p = Program::new(vec![rule("P", vec![lit("P", true)])]);
        let err = stratify(&p).unwrap_err();
        assert_eq!(err.predicate, "P");
        assert!(err.to_string().contains("not stratifiable"));
    }

    #[test]
    fn negative_two_cycle_rejected() {
        let p = Program::new(vec![
            rule("P", vec![lit("Q", true)]),
            rule("Q", vec![lit("P", false)]),
        ]);
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn mixed_recursion_through_lower_stratum_ok() {
        // Recursion at stratum 1 over a negated stratum-0 predicate.
        let p = Program::new(vec![
            rule("Base", vec![lit("R", false)]),
            rule("Rec", vec![lit("R", false), lit("Base", true)]),
            rule("Rec", vec![lit("Rec", false), lit("Base", true)]),
        ]);
        let (strata, count) = stratify(&p).unwrap();
        assert_eq!(count, 2);
        assert_eq!(strata["Rec"], 1);
    }
}
