//! Range restriction (safety) for Datalog rules.
//!
//! A rule is **safe** when every variable in its head and every variable in
//! a negated body literal also occurs in some positive body literal. Safe
//! rules have finite answers and give negation its set-difference reading —
//! the form Theorem 3.4's generated programs take.

use crate::ast::{Program, Rule};
use std::collections::BTreeSet;
use std::fmt;

/// A safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyError {
    /// Index of the offending rule.
    pub rule_index: usize,
    /// The unbound variable.
    pub variable: String,
    /// Where the variable occurred.
    pub location: SafetyLocation,
}

/// Where an unsafe variable occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafetyLocation {
    /// In the rule head.
    Head,
    /// In a negated body literal.
    NegatedLiteral,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let place = match self.location {
            SafetyLocation::Head => "head",
            SafetyLocation::NegatedLiteral => "negated literal",
        };
        write!(
            f,
            "rule #{}: variable `{}` in {place} is not bound by a positive body literal",
            self.rule_index, self.variable
        )
    }
}

impl std::error::Error for SafetyError {}

/// Check one rule for range restriction.
pub fn check_rule(index: usize, rule: &Rule) -> Result<(), SafetyError> {
    let positive: BTreeSet<&str> = rule
        .body
        .iter()
        .filter(|l| !l.negated)
        .flat_map(|l| l.vars())
        .collect();
    for t in &rule.head_terms {
        if let Some(v) = t.as_var() {
            if !positive.contains(v) {
                return Err(SafetyError {
                    rule_index: index,
                    variable: v.to_string(),
                    location: SafetyLocation::Head,
                });
            }
        }
    }
    for l in rule.body.iter().filter(|l| l.negated) {
        for v in l.vars() {
            if !positive.contains(v) {
                return Err(SafetyError {
                    rule_index: index,
                    variable: v.to_string(),
                    location: SafetyLocation::NegatedLiteral,
                });
            }
        }
    }
    Ok(())
}

/// Check every rule of a program.
pub fn check_program(program: &Program) -> Result<(), SafetyError> {
    for (i, r) in program.rules.iter().enumerate() {
        check_rule(i, r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DTerm, Literal};
    use causality_engine::Nature;

    fn lit(pred: &str, vars: &[&str]) -> Literal {
        Literal::pos(
            pred,
            Nature::Any,
            vars.iter().map(|v| DTerm::var(*v)).collect(),
        )
    }

    fn nlit(pred: &str, vars: &[&str]) -> Literal {
        Literal::neg(
            pred,
            Nature::Any,
            vars.iter().map(|v| DTerm::var(*v)).collect(),
        )
    }

    #[test]
    fn safe_rule_passes() {
        let r = Rule::new("H", vec![DTerm::var("x")], vec![lit("R", &["x", "y"])]);
        assert!(check_rule(0, &r).is_ok());
    }

    #[test]
    fn unbound_head_variable_fails() {
        let r = Rule::new("H", vec![DTerm::var("z")], vec![lit("R", &["x", "y"])]);
        let err = check_rule(3, &r).unwrap_err();
        assert_eq!(err.rule_index, 3);
        assert_eq!(err.variable, "z");
        assert_eq!(err.location, SafetyLocation::Head);
        assert!(err.to_string().contains("`z`"));
    }

    #[test]
    fn unbound_negated_variable_fails() {
        let r = Rule::new(
            "H",
            vec![DTerm::var("x")],
            vec![lit("R", &["x"]), nlit("I", &["w"])],
        );
        let err = check_rule(0, &r).unwrap_err();
        assert_eq!(err.location, SafetyLocation::NegatedLiteral);
    }

    #[test]
    fn negated_literal_does_not_bind() {
        let r = Rule::new("H", vec![DTerm::var("x")], vec![nlit("I", &["x"])]);
        assert!(check_rule(0, &r).is_err());
    }

    #[test]
    fn constants_in_head_are_always_safe() {
        let r = Rule::new("H", vec![DTerm::cst(1)], vec![lit("R", &["x"])]);
        assert!(check_rule(0, &r).is_ok());
    }

    #[test]
    fn program_check_reports_first_violation() {
        let p = Program::new(vec![
            Rule::new("A", vec![DTerm::var("x")], vec![lit("R", &["x"])]),
            Rule::new("B", vec![DTerm::var("q")], vec![lit("R", &["x"])]),
        ]);
        let err = check_program(&p).unwrap_err();
        assert_eq!(err.rule_index, 1);
    }
}
