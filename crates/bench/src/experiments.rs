//! Experiment implementations — one per paper figure/table.
//!
//! Each function regenerates its artifact and returns a printable report;
//! `EXPERIMENTS.md` records the outputs next to the paper's claims.

use crate::{render_table, time_once};
use causality_core::dichotomy::aquery::AQuery;
use causality_core::dichotomy::classify::{classify_why_no, classify_why_so, Complexity};
use causality_core::dichotomy::linearity::{dual_hypergraph, linear_order};
use causality_core::explain::Explainer;
use causality_core::fo::{causal_program, natures_from_db, run_causal_program};
use causality_core::ranking::Method;
use causality_core::resp::exact::why_so_responsibility_exact;
use causality_core::resp::flow::why_so_responsibility_flow_with;
use causality_core::resp::whyno::why_no_responsibility;
use causality_datagen::imdb::{burton_genre_query, fig2a_instance, generate, ImdbConfig};
use causality_datagen::workloads::{chain, random_graph, triangles, ChainConfig};
use causality_datalog::pretty::program_to_sql;
use causality_engine::{evaluate, ConjunctiveQuery, Value};
use causality_graph::cover::{min_hypergraph_cover_3p, min_vertex_cover};
use causality_graph::maxflow::FlowAlgorithm;
use causality_graph::UGraph;
use causality_reductions::cnf::{Clause, Cnf, Literal};
use causality_reductions::dpll;
use causality_reductions::h1_vc::{flat_triples, reduce_vc_to_h1, TripartiteHypergraph};
use causality_reductions::h3::h2_to_h3;
use causality_reductions::logspace::{bgap_to_fpmf, ugap_via_responsibility};
use causality_reductions::ring::reduce_3sat_to_h2;
use causality_reductions::selfjoin::reduce_vc_to_selfjoin;

/// E1/E2 — Fig. 1 + Fig. 2: the Burton/Musical explanation, end to end.
pub fn fig2_report() -> String {
    let (db, _refs) = fig2a_instance();
    let q = burton_genre_query();
    let result = evaluate(&db, &q).expect("evaluates");
    let mut out = String::new();
    out.push_str("Experiment E1/E2 — Fig. 1/2: why is `Musical` an answer?\n\n");
    out.push_str(&format!("query: {q}\n"));
    out.push_str(&format!(
        "answers: {:?}; lineage of Musical: {} derivations\n\n",
        result
            .answers
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>(),
        result.valuations.len()
    ));
    let explanation = Explainer::new(&db, &q)
        .with_method(Method::Auto)
        .why(&[Value::from("Musical")])
        .expect("explanation");
    // Paper's Fig. 2b values for comparison.
    let paper: &[(&str, f64)] = &[
        ("Movie(526338, Sweeney Todd…)", 0.33),
        ("Director(23456, David, Burton)", 0.33),
        ("Director(23468, Humphrey, Burton)", 0.33),
        ("Director(23488, Tim, Burton)", 0.33),
        ("Movie(359516, Let's Fall in Love)", 0.25),
        ("Movie(565577, The Melody Lingers On)", 0.25),
        ("Movie(6539, Candide)", 0.20),
        ("Movie(173629, Flight)", 0.20),
        ("Movie(389987, Manon Lescaut)", 0.20),
    ];
    let rows: Vec<Vec<String>> = explanation
        .causes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            vec![
                format!("{:.2}", c.rho),
                format!("{}{}", c.relation, c.values),
                paper
                    .get(i)
                    .map(|(_, rho)| format!("{rho:.2}"))
                    .unwrap_or_default(),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["ρ (ours)", "cause", "ρ (paper Fig. 2b)"],
        &rows,
    ));
    out
}

/// E3 — Fig. 3: the complexity table, re-derived by the classifier.
pub fn fig3_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E3 — Fig. 3: complexity of causality & responsibility\n\n");
    let catalogue: &[(&str, &str)] = &[
        ("linear chain", "q :- R^n(x, y), S^n(y, z)"),
        (
            "Fig. 5a",
            "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        ),
        ("Ex. 4.12 (1)", "q :- R^n(x, y), S^x(y, z), T^n(z, x)"),
        (
            "Ex. 4.12 (2)",
            "q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)",
        ),
        ("h1*", "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)"),
        ("h2*", "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)"),
        (
            "h3*",
            "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
        ),
        (
            "Ex. 4.8 4-cycle",
            "q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)",
        ),
        ("Prop. 4.16", "q :- R^n(x), S^x(x, y), R^n(y)"),
        ("open self-join", "q :- R^n(x, y), R^n(y, z)"),
    ];
    let mut rows = Vec::new();
    for (name, text) in catalogue {
        let q = ConjunctiveQuery::parse(text).expect("catalogue parses");
        let why_so = match classify_why_so(&q) {
            Ok(Complexity::NpHard(cert)) => format!("NP-hard (→ {})", cert.target.name()),
            Ok(c) => c.label().to_string(),
            Err(e) => format!("error: {e}"),
        };
        rows.push(vec![
            (*name).to_string(),
            text.to_string(),
            why_so,
            classify_why_no(&q).to_string(),
            "PTIME / FO (Thm 3.2, 3.4)".to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "query",
            "definition",
            "Why-So resp.",
            "Why-No resp.",
            "causality",
        ],
        &rows,
    ));
    out
}

/// E4/E12 — Fig. 4 / Algorithm 1: PTIME scaling of flow responsibility.
pub fn fig4_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E4/E12 — Algorithm 1 scaling (chain queries; times per tuple)\n\n");
    let mut rows = Vec::new();
    for atoms in [2usize, 3, 4] {
        for n in [50usize, 200, 800] {
            let inst = chain(&ChainConfig {
                atoms,
                tuples_per_relation: n,
                domain_per_layer: (n / 5).max(2),
                seed: 13,
            });
            let (result, elapsed) = time_once(|| {
                why_so_responsibility_flow_with(
                    &inst.db,
                    &inst.query,
                    inst.probe,
                    FlowAlgorithm::Dinic,
                )
                .expect("flow runs")
            });
            let (resp, stats) = result;
            rows.push(vec![
                format!("k={atoms}"),
                format!("{n}"),
                format!("{:.4}", resp.rho),
                format!("{}", stats.nodes),
                format!("{}", stats.edges),
                format!("{}", stats.paths),
                format!("{:.2?}", elapsed),
            ]);
        }
    }
    out.push_str(&render_table(
        &[
            "query",
            "tuples/rel",
            "ρ(probe)",
            "nodes",
            "edges",
            "paths",
            "time",
        ],
        &rows,
    ));
    out.push_str("\nShape check: time grows polynomially with n (PTIME, Thm. 4.5).\n");
    out
}

/// E5 — Fig. 5: dual hypergraphs and linearity.
pub fn fig5_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E5 — Fig. 5: dual query hypergraphs\n\n");
    for (name, text) in [
        (
            "Fig 5a (linear)",
            "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        ),
        (
            "Fig 5b h1* (not linear)",
            "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
        ),
    ] {
        let aq = AQuery::parse(text).expect("parses");
        out.push_str(&format!("{name}: {}\n", aq.render()));
        out.push_str(&dual_hypergraph(&aq).to_string());
        match linear_order(&aq) {
            Some(order) => out.push_str(&format!("linear order (atom indices): {order:?}\n\n")),
            None => out.push_str("no linear order exists\n\n"),
        }
    }
    out
}

/// E6 — Fig. 6 / Theorem 4.1 h1*: VC reduction vs the exact solver.
pub fn fig6_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E6 — Fig. 6: 3-partite vertex cover → h1* responsibility\n\n");
    let mut rows = Vec::new();
    for (label, h) in [
        (
            "Fig. 6 instance",
            TripartiteHypergraph {
                sizes: (3, 3, 2),
                edges: vec![(0, 0, 1), (0, 1, 0), (1, 0, 0), (2, 2, 1)],
            },
        ),
        (
            "random #1",
            TripartiteHypergraph {
                sizes: (3, 3, 3),
                edges: vec![(0, 1, 2), (1, 1, 0), (2, 0, 1), (0, 2, 2), (1, 2, 1)],
            },
        ),
    ] {
        let inst = reduce_vc_to_h1(&h);
        let (n, triples) = flat_triples(&h);
        let cover = min_hypergraph_cover_3p(n, &triples);
        let resp =
            why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).expect("exact solver");
        rows.push(vec![
            label.to_string(),
            format!("{}", h.edges.len()),
            format!("{}", cover.len()),
            format!("{}", resp.min_contingency.map(|g| g.len()).unwrap_or(0)),
            format!("{:.3}", resp.rho),
        ]);
    }
    out.push_str(&render_table(
        &[
            "instance",
            "|edges|",
            "min cover",
            "min contingency",
            "ρ(witness)",
        ],
        &rows,
    ));
    out.push_str("\nShape check: min contingency == min vertex cover on every instance.\n");
    out
}

/// E7 — Fig. 7/8: the 3SAT ring reduction, validated against DPLL.
pub fn fig7_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E7 — Fig. 7/8: 3SAT → h2* ring reduction\n\n");
    let sat = Cnf::new(
        3,
        vec![Clause(vec![
            Literal::pos(0),
            Literal::neg(1),
            Literal::pos(2),
        ])],
    );
    let mut unsat_clauses = Vec::new();
    for mask in 0u32..8 {
        unsat_clauses.push(Clause(vec![
            Literal {
                var: 0,
                positive: mask & 1 != 0,
            },
            Literal {
                var: 1,
                positive: mask & 2 != 0,
            },
            Literal {
                var: 2,
                positive: mask & 4 != 0,
            },
        ]));
    }
    let unsat = Cnf::new(3, unsat_clauses);
    let mut rows = Vec::new();
    for (label, cnf) in [("satisfiable", &sat), ("unsatisfiable", &unsat)] {
        let red = reduce_3sat_to_h2(cnf);
        let (ring, clause, witness) = red.triangle_census();
        let dpll_sat = dpll::solve(cnf).is_some();
        let (search, elapsed) = time_once(|| red.assignment_search());
        rows.push(vec![
            label.to_string(),
            format!("{}", cnf.clauses.len()),
            format!("{}", red.db.tuple_count()),
            format!("{ring}+{clause}+{witness}"),
            format!("{}", red.budget),
            format!("{dpll_sat}"),
            format!("{}", search.is_some()),
            format!("{elapsed:.2?}"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "formula",
            "clauses",
            "tuples",
            "triangles (ring+clause+wit)",
            "Σmᵢ",
            "DPLL sat",
            "contingency of Σmᵢ found",
            "time",
        ],
        &rows,
    ));
    out.push_str(
        "\nShape check (Lemma C.3): a Σmᵢ-size contingency exists iff φ is satisfiable.\n",
    );
    out
}

/// E8 — Fig. 9: h2* → h3* preserves responsibilities.
pub fn fig9_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E8 — Fig. 9: h2* → h3* instance transformation\n\n");
    let inst = triangles(4, 10, 21);
    let h3 = h2_to_h3(&inst.db, &inst.query);
    let mut rows = Vec::new();
    for (src, dst) in h3.tuple_map.iter().take(8) {
        let before = why_so_responsibility_exact(&inst.db, &inst.query, *src).expect("exact");
        let after = why_so_responsibility_exact(&h3.db, &h3.query, *dst).expect("exact");
        rows.push(vec![
            format!(
                "{}{}",
                inst.db.relation(src.rel).name(),
                inst.db.tuple(*src)
            ),
            format!("{}{}", h3.db.relation(dst.rel).name(), h3.db.tuple(*dst)),
            format!("{:.3}", before.rho),
            format!("{:.3}", after.rho),
        ]);
    }
    out.push_str(&render_table(
        &["h2* tuple", "h3* image", "ρ before", "ρ after"],
        &rows,
    ));
    out.push_str("\nShape check: ρ identical through the transformation.\n");
    out
}

/// E10 — Theorem 3.4: the generated Datalog programs and their SQL.
pub fn datalog_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E10 — Theorem 3.4: cause-computing Datalog programs\n\n");

    // Example 3.5.
    let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").expect("parses");
    let mut natures = std::collections::BTreeMap::new();
    natures.insert("R".to_string(), causality_core::fo::RelationNature::Mixed);
    natures.insert("S".to_string(), causality_core::fo::RelationNature::Endo);
    let generated = causal_program(&q, &natures).expect("generates");
    out.push_str(&format!("Example 3.5 — {q} with R mixed, S endogenous:\n"));
    out.push_str(&format!("{}", generated.program));
    out.push_str(&format!(
        "(refinements: {}, images: {}, embeddings: {})\n\nSQL rendering:\n{}\n\n",
        generated.refinement_count,
        generated.image_count,
        generated.embedding_count,
        program_to_sql(&generated.program)
    ));

    // Example 3.6.
    let q = ConjunctiveQuery::parse("q :- S(x), R(x, y), S(y)").expect("parses");
    let mut natures = std::collections::BTreeMap::new();
    natures.insert("R".to_string(), causality_core::fo::RelationNature::Exo);
    natures.insert("S".to_string(), causality_core::fo::RelationNature::Endo);
    let generated = causal_program(&q, &natures).expect("generates");
    out.push_str(&format!(
        "Example 3.6 — {q} with R exogenous, S endogenous:\n"
    ));
    out.push_str(&format!("{}", generated.program));

    // Run 3.5's program on its instance.
    let mut db = causality_engine::Database::new();
    let r = db.add_relation(causality_engine::Schema::new("R", &["x", "y"]));
    let s = db.add_relation(causality_engine::Schema::new("S", &["y"]));
    db.insert_exo(r, vec![Value::from("a4"), Value::from("a3")]);
    db.insert_endo(r, vec![Value::from("a3"), Value::from("a3")]);
    db.insert_endo(s, vec![Value::from("a3")]);
    let causes = run_causal_program(&db, &ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap())
        .expect("runs");
    out.push_str(&format!(
        "\nExample 3.5 instance results: C_R = {:?}, C_S = {:?}\n",
        causes["R"]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>(),
        causes["S"]
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    ));
    // Natures derived from a database partition.
    let derived = natures_from_db(&db, &ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap())
        .expect("derives");
    out.push_str(&format!("derived natures: {derived:?}\n"));
    out
}

/// E14 — Theorem 4.15: the LOGSPACE chain on concrete graphs.
pub fn logspace_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E14 — Theorem 4.15: UGAP → BGAP → FPMF → responsibility\n\n");
    let mut rows = Vec::new();
    for (label, edges, n, a, b) in [
        (
            "path 0–4",
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            5usize,
            0usize,
            4usize,
        ),
        ("disconnected", vec![(0, 1), (2, 3)], 4, 0, 3),
        (
            "cycle + tail",
            vec![(0, 1), (1, 2), (2, 0), (2, 3)],
            4,
            0,
            3,
        ),
    ] {
        let mut g = UGraph::new(n);
        for (u, v) in &edges {
            g.add_edge(*u, *v);
        }
        let reachable = g.reachable(a, b);
        let (bg, left, a2, c) = g.to_bgap(a, b);
        let fpmf = bgap_to_fpmf(&bg, left, a2, c);
        let flow = fpmf.max_flow();
        let (gamma, k) = ugap_via_responsibility(&g, a, b);
        rows.push(vec![
            label.to_string(),
            format!("{reachable}"),
            format!("{flow}"),
            format!("{k}"),
            format!("{gamma}"),
            format!("{}", gamma as u64 == k),
        ]);
    }
    out.push_str(&render_table(
        &[
            "graph",
            "reachable (BFS)",
            "FPMF max-flow",
            "k=|E|+1",
            "min contingency",
            "chain says reachable",
        ],
        &rows,
    ));
    out.push_str("\nShape check: the responsibility chain decides UGAP exactly.\n");
    out
}

/// E16 — Theorem 4.17: Why-No responsibility is flat in database size.
pub fn whyno_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E16 — Theorem 4.17: Why-No responsibility scaling\n\n");
    let mut rows = Vec::new();
    for movies in [100usize, 400, 1600] {
        let (db, _refs) = generate(&ImdbConfig {
            directors: movies / 5,
            movies,
            ..ImdbConfig::default()
        });
        let q = burton_genre_query().ground(&[Value::from("Documentary")]);
        // Candidate insertions: every endogenous tuple is a candidate; the
        // missing-genre answer needs Movie+Director support.
        let probe = db.endogenous_tuples()[0];
        let (resp, elapsed) = time_once(|| why_no_responsibility(&db, &q, probe));
        rows.push(vec![
            format!("{}", db.tuple_count()),
            format!("{:?}", resp.map(|r| r.rho)),
            format!("{elapsed:.2?}"),
        ]);
    }
    out.push_str(&render_table(&["tuples", "ρ(probe)", "time"], &rows));
    out.push_str("\nShape check: contingency size bounded by query size (m−1), time grows only with lineage computation.\n");
    out
}

/// E15 — Prop. 4.16: self-join hardness vs the VC oracle.
pub fn selfjoin_report() -> String {
    let mut out = String::new();
    out.push_str("Experiment E15 — Prop. 4.16: vertex cover → R(x), S(x,y), R(y)\n\n");
    let mut rows = Vec::new();
    for (n, m, seed) in [(5usize, 6usize, 1u64), (6, 9, 2), (7, 12, 3)] {
        let edges = random_graph(n, m, seed);
        let cover = min_vertex_cover(n, &edges);
        let inst = reduce_vc_to_selfjoin(n, &edges, false);
        let (resp, elapsed) = time_once(|| {
            why_so_responsibility_exact(&inst.db, &inst.query, inst.witness).expect("exact")
        });
        rows.push(vec![
            format!("n={n}, |E|={}", edges.len()),
            format!("{}", cover.len()),
            format!("{}", resp.min_contingency.map(|g| g.len()).unwrap_or(0)),
            format!("{elapsed:.2?}"),
        ]);
    }
    out.push_str(&render_table(
        &["graph", "min vertex cover", "min contingency", "time"],
        &rows,
    ));
    out
}

/// All experiments concatenated.
pub fn all_reports() -> String {
    [
        fig2_report(),
        fig3_report(),
        fig4_report(),
        fig5_report(),
        fig6_report(),
        fig7_report(),
        fig9_report(),
        datalog_report(),
        logspace_report(),
        whyno_report(),
        selfjoin_report(),
    ]
    .join("\n\n============================================================\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_values() {
        let report = fig2_report();
        assert!(report.contains("0.33"));
        assert!(report.contains("0.20"));
        assert!(report.contains("Sweeney Todd"));
    }

    #[test]
    fn fig3_reproduces_dichotomy() {
        let report = fig3_report();
        assert!(report.contains("NP-hard (→ h2*)"));
        assert!(report.contains("PTIME"));
        assert!(report.contains("open (self-join)"));
    }

    #[test]
    fn fig5_shows_orders() {
        let report = fig5_report();
        assert!(report.contains("linear order"));
        assert!(report.contains("no linear order exists"));
    }

    #[test]
    fn fig6_cover_equals_contingency() {
        let report = fig6_report();
        assert!(report.contains("min contingency == min vertex cover"));
    }

    #[test]
    fn logspace_chain_decides() {
        let report = logspace_report();
        assert!(report.contains("true"));
        assert!(report.contains("false"));
    }
}
