//! # causality-bench — experiment harnesses and Criterion benches
//!
//! One regenerating artifact per figure/table of the paper (the
//! per-experiment index lives in DESIGN.md §3):
//!
//! * the `experiments` binary prints paper-style tables
//!   (`cargo run -p causality_bench --bin experiments -- all`);
//! * the Criterion benches under `benches/` measure the *shapes* the
//!   paper claims: polynomial scaling of Algorithm 1, exponential
//!   exact-solver growth on h1*/h2* instances, flat data-complexity for
//!   Why-No responsibility.
//!
//! This crate's library part holds the shared helpers: timing, table
//! rendering, and the experiment implementations reused by both the
//! binary and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod manifest;

pub use manifest::{BenchManifest, BenchResult, Direction};

use std::time::{Duration, Instant};

/// Wall-clock one invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Criterion group preset shared by all benches: few samples and short
/// measurement windows so the full suite completes in minutes while still
/// showing the asymptotic shapes.
pub fn bench_group<'a>(
    c: &'a mut criterion::Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wider cell".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[3].starts_with("wider cell"));
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
