//! The experiment harness: regenerate every figure/table of the paper.
//!
//! ```text
//! cargo run -p causality-bench --bin experiments -- all
//! cargo run -p causality-bench --bin experiments -- fig2 fig3
//! ```
//!
//! Available experiments: fig2, fig3, fig4, fig5, fig6, fig7, fig9,
//! datalog, logspace, whyno, selfjoin, all.

use causality_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in requested {
        let report = match name {
            "fig2" => experiments::fig2_report(),
            "fig3" => experiments::fig3_report(),
            "fig4" => experiments::fig4_report(),
            "fig5" => experiments::fig5_report(),
            "fig6" => experiments::fig6_report(),
            "fig7" => experiments::fig7_report(),
            "fig9" => experiments::fig9_report(),
            "datalog" => experiments::datalog_report(),
            "logspace" => experiments::logspace_report(),
            "whyno" => experiments::whyno_report(),
            "selfjoin" => experiments::selfjoin_report(),
            "all" => experiments::all_reports(),
            other => {
                eprintln!(
                    "unknown experiment `{other}`; available: fig2 fig3 fig4 fig5 fig6 \
                     fig7 fig9 datalog logspace whyno selfjoin all"
                );
                std::process::exit(2);
            }
        };
        println!("{report}");
    }
}
