//! The shared `BENCH_*.json` manifest schema (version 1).
//!
//! Every self-measuring bench writes its machine-readable record at the
//! repo root in one common shape, so `cargo run -p xtask -- bench-gate`
//! can validate all of them against a single schema and compare runs of
//! the same bench across PRs:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "load_harness",          // which harness produced it
//!   "pr": 6,                          // the PR that recorded it
//!   "unit": "ops/s",                  // headline unit
//!   "git_rev": "abc1234",             // rev the numbers were taken at
//!   "host_parallelism": 8,            // available_parallelism() there
//!   "seed": 6,                        // workload seed
//!   "note": "...",
//!   "results": [
//!     {"name": "throughput", "value": 1234.5,
//!      "unit": "ops/s", "direction": "higher_is_better"}
//!   ],
//!   "extra": {"anything": "goes"}     // optional, not gated
//! }
//! ```
//!
//! The gate's regression check is **direction-aware**: a
//! `higher_is_better` result regresses by dropping, a `lower_is_better`
//! one (latency) by rising. Gate cross-host durability with unitless
//! ratios or structural counts when absolute times would be noise.

use std::fmt::Write as _;
use std::process::Command;

/// Which way is better, per result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (throughput, speedup ratios).
    HigherIsBetter,
    /// Smaller values are better (latencies, memory).
    LowerIsBetter,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
        }
    }
}

/// One gated measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Stable name, matched across manifests of the same bench.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// The unit of `value`.
    pub unit: String,
    /// Which way is better.
    pub direction: Direction,
}

/// Builder for a schema-version-1 manifest.
#[derive(Clone, Debug)]
pub struct BenchManifest {
    bench: String,
    pr: u32,
    unit: String,
    seed: u64,
    note: String,
    results: Vec<BenchResult>,
    /// Free-form extras: `(key, raw JSON value)` pairs, emitted verbatim
    /// under `"extra"`. Not validated or gated.
    extra: Vec<(String, String)>,
}

impl BenchManifest {
    /// Start a manifest for `bench`, recorded by `pr`, with headline
    /// `unit` and workload `seed`.
    pub fn new(bench: &str, pr: u32, unit: &str, seed: u64, note: &str) -> Self {
        BenchManifest {
            bench: bench.to_string(),
            pr,
            unit: unit.to_string(),
            seed,
            note: note.to_string(),
            results: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Append one gated result.
    pub fn push(&mut self, name: &str, value: f64, unit: &str, direction: Direction) {
        self.results.push(BenchResult {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
            direction,
        });
    }

    /// Attach a free-form extra; `raw_json` is emitted verbatim as the
    /// value, so pass `"42"`, `"\"text\""`, or a nested object literal.
    pub fn extra(&mut self, key: &str, raw_json: &str) {
        self.extra.push((key.to_string(), raw_json.to_string()));
    }

    /// Render the manifest, stamping `git_rev` (short head of the
    /// current checkout, `"unknown"` outside git) and
    /// `host_parallelism`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"bench\": {},", escape(&self.bench));
        let _ = writeln!(out, "  \"pr\": {},", self.pr);
        let _ = writeln!(out, "  \"unit\": {},", escape(&self.unit));
        let _ = writeln!(out, "  \"git_rev\": {},", escape(&git_rev()));
        let _ = writeln!(out, "  \"host_parallelism\": {},", host_parallelism());
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"note\": {},", escape(&self.note));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"value\": {}, \"unit\": {}, \"direction\": {}}}",
                escape(&r.name),
                fmt_f64(r.value),
                escape(&r.unit),
                escape(r.direction.as_str())
            );
            out.push_str(if i + 1 < self.results.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]");
        if !self.extra.is_empty() {
            out.push_str(",\n  \"extra\": {\n");
            for (i, (k, v)) in self.extra.iter().enumerate() {
                let _ = write!(out, "    {}: {}", escape(k), v);
                out.push_str(if i + 1 < self.extra.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the rendered manifest to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Short git rev of the checkout containing this crate (the numbers'
/// provenance), or `"unknown"`.
fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render an f64 the schema accepts: finite numbers plainly, non-finite
/// as `null` (the gate treats `null` as "not measured this run").
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_renders_all_schema_fields() {
        let mut m = BenchManifest::new("demo", 6, "ops/s", 42, "a note");
        m.push("throughput", 1234.5, "ops/s", Direction::HigherIsBetter);
        m.push("p99", 850.0, "us", Direction::LowerIsBetter);
        m.extra("shards", "4");
        let json = m.to_json();
        for needle in [
            "\"schema_version\": 1",
            "\"bench\": \"demo\"",
            "\"pr\": 6",
            "\"git_rev\": ",
            "\"host_parallelism\": ",
            "\"seed\": 42",
            "\"name\": \"throughput\", \"value\": 1234.5",
            "\"direction\": \"higher_is_better\"",
            "\"name\": \"p99\", \"value\": 850.0",
            "\"direction\": \"lower_is_better\"",
            "\"extra\": {",
            "\"shards\": 4",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn non_finite_values_render_as_null() {
        let mut m = BenchManifest::new("demo", 6, "x", 0, "");
        m.push("skipped", f64::NAN, "x", Direction::HigherIsBetter);
        assert!(m.to_json().contains("\"value\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let m = BenchManifest::new("a\"b\\c\nd", 1, "x", 0, "");
        assert!(m.to_json().contains("\"a\\\"b\\\\c\\nd\""));
    }
}
