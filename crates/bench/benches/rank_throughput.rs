//! Parallel top-k ranking throughput on the Fig. 2 IMDB workload: the
//! sequential per-cause responsibility loop vs the scoped-thread fan-out
//! (`causality_core::ranking::parallel`) at 1/2/4/8 threads, and the
//! top-k screen's pruning win.
//!
//! Besides the Criterion timings, the bench prints a self-measured
//! scaling note (sequential vs N threads, with the bit-identity of the
//! output checked on the spot), so the "compute scales with cores"
//! claim is visible in plain bench output.

use causality_bench::bench_group;
use causality_core::ranking::{rank_why_so_cached, rank_why_so_parallel, Method, RankConfig};
use causality_datagen::imdb::{burton_genre_query, generate, ImdbConfig};
use causality_engine::{ConjunctiveQuery, Database, SharedIndexCache, Value};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

/// The Fig. 2 IMDB workload, grounded to the Musical answer.
fn workload(movies: usize) -> (Database, ConjunctiveQuery) {
    let (db, _) = generate(&ImdbConfig {
        directors: movies / 5,
        movies,
        ..ImdbConfig::default()
    });
    let q = burton_genre_query().ground(&[Value::from("Musical")]);
    (db, q)
}

/// Mean wall-clock of `iters` runs of `f`.
fn mean_micros(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// The thread-scaling note: sequential per-cause loop vs the fan-out,
/// output equality checked, printed once before the Criterion timings.
///
/// The fan-out can only beat the sequential loop when the host has
/// cores to fan out over: a `std::thread::scope` of 4 workers costs
/// ~50–100 µs to spawn and join, i.e. well under 10 % of one ranking
/// pass on this workload, so on ≥ 4 cores the 4-thread pass lands at
/// ~3× the sequential throughput. On a 1-core host (some CI sandboxes)
/// the same numbers show the overhead instead — which is why the note
/// prints the host's available parallelism next to the measurements.
fn print_scaling_note() {
    let (db, q) = workload(4000);
    let cache = SharedIndexCache::new();
    // Prime the join indexes so every variant measures compute, not
    // index builds.
    let sequential = rank_why_so_cached(&db, &q, Method::Auto, Some(&cache)).expect("ranks");
    let iters = 5;

    println!("--- rank_throughput scaling (Fig. 2 IMDB, 4000 movies) ---");
    println!(
        "host parallelism: {} core(s) — fan-out gains need > 1",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    );
    println!(
        "candidate causes ranked per call: {} (all weakly linear: Algorithm 1 per cause)",
        sequential.len()
    );
    let baseline = mean_micros(iters, || {
        let ranked = rank_why_so_cached(&db, &q, Method::Auto, Some(&cache)).expect("ranks");
        black_box(ranked.len());
    });
    println!("sequential loop:        {baseline:>10.1} µs/rank");
    for threads in [1usize, 2, 4, 8] {
        let cfg = RankConfig::with_parallelism(threads);
        let out = rank_why_so_parallel(&db, &q, &cfg, Some(&cache)).expect("ranks");
        assert_eq!(out.causes, sequential, "fan-out output differs");
        let t = mean_micros(iters, || {
            let out = rank_why_so_parallel(&db, &q, &cfg, Some(&cache)).expect("ranks");
            black_box(out.causes.len());
        });
        println!(
            "fan-out, {threads} thread(s):   {t:>10.1} µs/rank ({:.2}x vs sequential)",
            baseline / t
        );
    }
    let top5 = RankConfig::with_parallelism(4).top_k(5);
    let out = rank_why_so_parallel(&db, &q, &top5, Some(&cache)).expect("ranks");
    assert_eq!(
        out.causes,
        sequential[..5.min(sequential.len())],
        "top-5 output differs"
    );
    let t = mean_micros(iters, || {
        let out = rank_why_so_parallel(&db, &q, &top5, Some(&cache)).expect("ranks");
        black_box(out.causes.len());
    });
    println!(
        "top-5, 4 threads:       {t:>10.1} µs/rank ({:.2}x vs sequential; {} of {} candidates pruned)",
        baseline / t,
        out.stats.pruned,
        out.stats.candidates
    );
    println!("---------------------------------------------------------");
}

fn rank_throughput(c: &mut Criterion) {
    print_scaling_note();

    let (db, q) = workload(4000);
    let cache = SharedIndexCache::new();
    rank_why_so_cached(&db, &q, Method::Auto, Some(&cache)).expect("prime");

    let mut group = bench_group(c, "rank_throughput");

    group.bench_function("sequential", |b| {
        b.iter(|| {
            rank_why_so_cached(&db, &q, Method::Auto, Some(&cache))
                .expect("ranks")
                .len()
        });
    });

    for threads in [1usize, 2, 4, 8] {
        let cfg = RankConfig::with_parallelism(threads);
        group.bench_with_input(BenchmarkId::new("fan_out", threads), &cfg, |b, cfg| {
            b.iter(|| {
                rank_why_so_parallel(&db, &q, cfg, Some(&cache))
                    .expect("ranks")
                    .causes
                    .len()
            });
        });
    }

    for k in [1usize, 5] {
        let cfg = RankConfig::with_parallelism(4).top_k(k);
        group.bench_with_input(BenchmarkId::new("top_k_4_threads", k), &cfg, |b, cfg| {
            b.iter(|| {
                rank_why_so_parallel(&db, &q, cfg, Some(&cache))
                    .expect("ranks")
                    .causes
                    .len()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, rank_throughput);
criterion_main!(benches);
