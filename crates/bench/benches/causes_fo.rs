//! E9/E10 — computing all causes two ways: directly from the minimized
//! n-lineage (Theorem 3.2) vs by evaluating the generated Datalog
//! program (Theorem 3.4). Both are PTIME; the comparison quantifies the
//! constant-factor cost of the declarative route.

use causality_bench::bench_group;
use causality_core::causes::why_so_causes;
use causality_core::fo::run_causal_program;
use causality_engine::{ConjunctiveQuery, Database, Schema, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn instance(n: usize, seed: u64) -> (Database, ConjunctiveQuery) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for _ in 0..n {
        let endo = rng.gen_bool(0.7);
        db.insert(
            r,
            vec![
                Value::Int(rng.gen_range(0..n as i64 / 2 + 1)),
                Value::Int(rng.gen_range(0..20)),
            ],
            endo,
        );
    }
    for y in 0..20i64 {
        db.insert(s, vec![Value::Int(y)], rng.gen_bool(0.7));
    }
    (
        db,
        ConjunctiveQuery::parse("q :- R(x, y), S(y)").expect("parses"),
    )
}

fn causes_fo(c: &mut Criterion) {
    let mut group = bench_group(c, "causes_lineage_vs_datalog");
    for n in [50usize, 200, 800] {
        let (db, q) = instance(n, 31);
        group.bench_with_input(BenchmarkId::new("lineage_thm32", n), &n, |b, _| {
            b.iter(|| why_so_causes(&db, &q).expect("causes").len());
        });
        group.bench_with_input(BenchmarkId::new("datalog_thm34", n), &n, |b, _| {
            b.iter(|| {
                run_causal_program(&db, &q)
                    .expect("program runs")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, causes_fo);
criterion_main!(benches);
