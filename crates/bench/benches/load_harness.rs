//! load_harness — a multi-tenant, open-loop load generator for the
//! sharded serving tier.
//!
//! The workload comes from `causality_datagen::tenants`: Zipf-hot
//! tenants issuing a skewed mix of Why-So / Why-No / rank-top-k reads
//! interleaved with cache-invalidating writes, generated deterministically
//! from one seed. A pool of client threads replays the op stream
//! **open-loop** (submit without waiting, collect the pending handles,
//! wait at the end), which is the arrival pattern bounded admission
//! exists for.
//!
//! Six phases, each asserting its claim *in the bench*:
//!
//! 1. **throughput** — the same op stream against a single-shard tier
//!    and a sharded tier (same workers per shard): warmup, stats
//!    reset, then a timed replay; latency percentiles come from the
//!    tier's own fixed-bucket histograms;
//! 2. **isolation** — warm one tenant's responsibility cache, hammer a
//!    tenant on a *different* shard with writes, and require the warm
//!    entry to survive (per-shard caches make cross-tenant eviction
//!    structurally impossible);
//! 3. **overload** — shrink the admission limit under stalled workers
//!    and require every overrun submission to be *rejected* with
//!    `Overloaded` (never dropped, never blocking) while every accepted
//!    request still resolves;
//! 4. **slow-log outlier** — a non-weakly-linear (NP-hard) triangle
//!    query served next to a stalled worker must land in the
//!    explanation slow-log with its dichotomy class and a
//!    `kernel_solve` span attached;
//! 5. **hard mix** (PR 8) — deadline-bound NP-hard triangle requests
//!    interleaved with deadline-free PTIME traffic: the hardness router
//!    must answer every hard request approximately within its budget
//!    (zero `DeadlineExceeded`, zero worker stalls), and the mixed
//!    stream's p99 is recorded as the headline tail-latency number;
//! 6. **chaos soak** (PR 9) — a seeded [`FaultPlan`] (panic bursts,
//!    worker stalls, cache poisoning, submission bursts, clock skew)
//!    is replayed against a self-healing tier driven entirely through
//!    `explain_with_retry`: every submission must come back as an
//!    answer or a retryable reject carrying a retry-after hint (zero
//!    silent drops), the wedged shard must be quarantined and restarted
//!    by the supervisor, and the tier must converge back to `Healthy`;
//!    the time that convergence takes is recorded as
//!    `chaos_recovery_ms`.
//!
//! The timed replays run with **full trace sampling on** (ring of 128
//! per shard), so the throughput numbers the bench gate compares across
//! PRs already include the tracing overhead — that is the release-mode
//! overhead guard. A full run writes `BENCH_9.json` (shared manifest
//! schema, see `causality_bench::manifest`) at the repo root; the
//! telemetry artifacts `traces.jsonl`, `metrics.prom`, and
//! `slowlog.jsonl` always land under `target/load_harness/` — never in
//! the repo — in both full and `--test`/`--list` (miniature) runs.

use causality_bench::{BenchManifest, Direction};
use causality_datagen::hard_instances::dense_triangles;
use causality_datagen::tenants::{tenant_workload, TenantOp, TenantWorkload, TenantWorkloadConfig};
use causality_engine::{Database, Schema, Value};
use causality_service::{
    BreakerConfig, ExplainMode, ExplainRequest, FaultKind, FaultPlan, HealthState, ManualClock,
    PendingExplain, RetryPolicy, ServiceConfig, ServiceError, ShardedService, SupervisorConfig,
    TenantId, TierConfig,
};
use causality_telemetry::{Stage, TelemetryConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many client threads replay the op stream.
const CLIENTS: usize = 8;

struct HarnessConfig {
    workload: TenantWorkloadConfig,
    shards: usize,
    workers_per_shard: usize,
}

fn full_config() -> HarnessConfig {
    HarnessConfig {
        workload: TenantWorkloadConfig {
            tenants: 8,
            rows_per_tenant: 24,
            ops: 6_000,
            ..TenantWorkloadConfig::default()
        },
        shards: 4,
        workers_per_shard: 2,
    }
}

fn quick_config() -> HarnessConfig {
    HarnessConfig {
        workload: TenantWorkloadConfig {
            tenants: 4,
            rows_per_tenant: 8,
            ops: 200,
            ..TenantWorkloadConfig::default()
        },
        shards: 2,
        workers_per_shard: 1,
    }
}

/// Build a tier for the workload: queue and admission sized so the
/// open-loop replay is never rejected (the overload phase shrinks them
/// on purpose).
fn build_tier(
    workload: &TenantWorkload,
    shards: usize,
    workers: usize,
) -> (ShardedService, Vec<TenantId>) {
    let tier = ShardedService::new(TierConfig {
        shards,
        admission_limit: workload.ops.len().max(64),
        default_deadline: None,
        shard: ServiceConfig {
            workers,
            queue_capacity: workload.ops.len().max(64),
            telemetry: TelemetryConfig {
                trace_ring: 128,
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });
    let tenants = workload
        .tenants
        .iter()
        .map(|spec| {
            tier.add_tenant(&spec.name, spec.db.clone())
                .expect("unique tenant names")
        })
        .collect();
    (tier, tenants)
}

fn request_of(workload: &TenantWorkload, op: &TenantOp) -> Option<(usize, ExplainRequest)> {
    match op {
        TenantOp::WhySo { tenant, answer } => Some((
            *tenant,
            ExplainRequest::why_so(workload.tenants[*tenant].query.clone(), answer.clone()),
        )),
        TenantOp::WhyNo { tenant, answer } => Some((
            *tenant,
            ExplainRequest::why_no(workload.tenants[*tenant].query.clone(), answer.clone()),
        )),
        TenantOp::RankTopK { tenant, answer, k } => Some((
            *tenant,
            ExplainRequest::rank_top_k(workload.tenants[*tenant].query.clone(), answer.clone(), *k),
        )),
        TenantOp::Write { .. } => None,
    }
}

/// Replay the op stream once across [`CLIENTS`] threads (client `c`
/// takes ops `c, c+CLIENTS, …`): reads are submitted open-loop and
/// waited at the end, writes are applied inline. Returns the wall time
/// of the whole replay and the peak aggregate queue depth observed.
fn replay(
    tier: &ShardedService,
    tenants: &[TenantId],
    workload: &TenantWorkload,
) -> (Duration, u64) {
    let peak_depth = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let peak_depth = &peak_depth;
            scope.spawn(move || {
                let mut pending: Vec<PendingExplain> = Vec::new();
                for (i, op) in workload
                    .ops
                    .iter()
                    .enumerate()
                    .skip(client)
                    .step_by(CLIENTS)
                {
                    match request_of(workload, op) {
                        Some((tenant, request)) => {
                            let handle = tier
                                .submit(tenants[tenant], request)
                                .expect("sized for zero rejects");
                            pending.push(handle);
                        }
                        None => {
                            let TenantOp::Write { tenant, value } = op else {
                                unreachable!("non-request ops are writes");
                            };
                            tier.update(tenants[*tenant], |db| {
                                let s = db.relation_id("S").expect("workload schema");
                                db.insert_endo(s, vec![value.clone()]);
                            })
                            .expect("registered tenant");
                        }
                    }
                    if i % 32 == 0 {
                        let depth = tier.stats().aggregate().queue_depth;
                        peak_depth.fetch_max(depth, Ordering::Relaxed);
                    }
                }
                for handle in pending {
                    let response = handle.wait().expect("service stays up");
                    response.result.expect("workload requests are valid");
                }
            });
        }
    });
    (start.elapsed(), peak_depth.load(Ordering::Relaxed))
}

struct PhaseNumbers {
    throughput: f64,
    p50_us: u64,
    p99_us: u64,
    cache_hit_rate: f64,
    peak_queue_depth: u64,
}

/// Telemetry captured from the timed tier before shutdown.
struct TierTelemetry {
    traces_jsonl: String,
    metrics_prom: String,
    traces_sampled: usize,
}

/// Warmup replay, stats reset, then the timed replay.
fn measure_tier(
    workload: &TenantWorkload,
    shards: usize,
    workers: usize,
) -> (PhaseNumbers, TierTelemetry) {
    let (tier, tenants) = build_tier(workload, shards, workers);
    replay(&tier, &tenants, workload);
    let warm = tier.snapshot_and_reset().aggregate();
    assert!(warm.requests > 0, "warmup really ran");

    let (elapsed, peak_queue_depth) = replay(&tier, &tenants, workload);
    let stats = tier.stats().aggregate();
    assert_eq!(
        stats.admission_rejects, 0,
        "tier is sized to accept the whole open loop"
    );
    assert_eq!(stats.queue_depth, 0, "replay fully drained");
    assert!(
        stats.p99_us() >= stats.p50_us(),
        "histogram quantiles are monotone"
    );
    assert!(
        warm.requests == stats.requests,
        "warmup and measurement replay the same stream"
    );
    let hits = stats.cache_hits as f64;
    let numbers = PhaseNumbers {
        throughput: workload.ops.len() as f64 / elapsed.as_secs_f64(),
        p50_us: stats.p50_us(),
        p99_us: stats.p99_us(),
        cache_hit_rate: hits / (hits + stats.cache_misses as f64),
        peak_queue_depth,
    };
    let traces = tier.recent_traces();
    assert!(
        !traces.is_empty(),
        "full sampling must retain traces of the timed replay"
    );
    let telemetry = TierTelemetry {
        traces_jsonl: tier.export_traces(),
        metrics_prom: tier.export_metrics(),
        traces_sampled: traces.len(),
    };
    tier.shutdown();
    (numbers, telemetry)
}

/// Slow-log outlier: serve an *easy* (weakly linear, PTIME) request and
/// a *hard* (non-weakly-linear triangle, NP-hard per Cor. 4.14) request
/// through a tier whose workers are artificially stalled, with a slow
/// threshold between the two. The hard request must land in the
/// slow-log carrying its dichotomy class and a `kernel_solve` span.
/// Returns the slow-log JSONL for the artifact dump.
fn assert_slow_log_outlier(workload: &TenantWorkload) -> String {
    let tier = ShardedService::new(TierConfig {
        shards: 1,
        admission_limit: 64,
        default_deadline: None,
        shard: ServiceConfig {
            workers: 1,
            telemetry: TelemetryConfig {
                slow_latency: Some(Duration::from_millis(5)),
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });

    let easy_spec = &workload.tenants[0];
    let easy = tier
        .add_tenant(&easy_spec.name, easy_spec.db.clone())
        .expect("fresh tier");

    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));
    db.insert_endo(r, vec![Value::int(1), Value::int(2)]);
    db.insert_endo(s, vec![Value::int(2), Value::int(3)]);
    db.insert_endo(t, vec![Value::int(3), Value::int(1)]);
    let hard = tier.add_tenant("triangle", db).expect("fresh tier");
    let triangle =
        causality_engine::ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").unwrap();

    // The easy request runs unstalled and stays under the threshold.
    let easy_req =
        ExplainRequest::why_so(easy_spec.query.clone(), vec![easy_spec.answers[0].clone()]);
    tier.explain(easy, easy_req)
        .expect("serves")
        .result
        .unwrap();

    // Stall the worker for the hard request so it overruns the slow
    // threshold deterministically.
    tier.inject_delay(|_| Some(Duration::from_millis(20)));
    let hard_req = ExplainRequest::why_so(triangle, vec![]);
    let resp = tier.explain(hard, hard_req).expect("serves");
    resp.result.expect("boolean triangle answer has causes");

    let slow = tier.slow_log_records();
    assert!(
        !slow.is_empty(),
        "the stalled NP-hard request must hit the slow-log"
    );
    let outlier = slow
        .iter()
        .find(|rec| rec.dichotomy.starts_with("NP-hard"))
        .expect("slow-log captures the NP-hard outlier with its class");
    assert_eq!(outlier.kind, "why_so");
    assert!(
        outlier.stage(Stage::KernelSolve).is_some(),
        "outlier keeps its kernel-stage timing"
    );
    assert!(
        outlier.total_us >= 5_000,
        "outlier really overran the 5ms threshold: {} us",
        outlier.total_us
    );
    assert!(
        !slow.iter().any(|rec| rec.dichotomy == "PTIME"),
        "the easy request stays out of the slow-log"
    );
    let jsonl = tier.export_slow_log();
    tier.shutdown();
    jsonl
}

/// Mixed easy/hard traffic through the hardness router (PR 8): one
/// tenant serves a dense NP-hard triangle database and submits every
/// request with a tight deadline, interleaved with an easy tenant's
/// deadline-free PTIME stream. The router must answer *every* hard
/// request approximately within its budget — zero `DeadlineExceeded`,
/// zero stalls — and the mixed-stream p99 is the headline tail number.
struct HardMixNumbers {
    p50_us: u64,
    p99_us: u64,
    hard_requests: u64,
    approx_requests: u64,
}

fn measure_hard_mix(workload: &TenantWorkload, quick: bool) -> HardMixNumbers {
    let (nodes, tuples, hard_every, rounds) = if quick {
        (5, 40, 4, 60)
    } else {
        (6, 150, 4, 600)
    };
    let inst = dense_triangles(nodes, tuples, workload.ops.len() as u64);
    let tier = ShardedService::new(TierConfig {
        shards: 2,
        admission_limit: 4 * rounds as usize,
        default_deadline: None,
        shard: ServiceConfig {
            workers: 1,
            queue_capacity: 4 * rounds as usize,
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });
    let easy_spec = &workload.tenants[0];
    let easy = tier
        .add_tenant(&easy_spec.name, easy_spec.db.clone())
        .expect("fresh tier");
    let hard = tier
        .add_tenant("hard-triangles", inst.db.clone())
        .expect("fresh tier");
    let easy_req =
        ExplainRequest::why_so(easy_spec.query.clone(), vec![easy_spec.answers[0].clone()]);
    let hard_req = ExplainRequest::why_so(inst.query.clone(), vec![]);

    let mut pending: Vec<(bool, PendingExplain)> = Vec::new();
    for i in 0..rounds {
        let is_hard = i % hard_every == 0;
        let handle = if is_hard {
            tier.submit_with_deadline(hard, hard_req.clone(), Duration::from_millis(2))
                .expect("sized for zero rejects")
        } else {
            tier.submit(easy, easy_req.clone())
                .expect("sized for zero rejects")
        };
        pending.push((is_hard, handle));
    }

    let mut hard_requests = 0u64;
    let mut approx_requests = 0u64;
    for (is_hard, handle) in pending {
        let response = handle.wait().expect("service stays up");
        let explanation = response
            .result
            .expect("every request is answered — hard ones approximately");
        if is_hard {
            hard_requests += 1;
            if matches!(explanation.mode, ExplainMode::Approximate { .. }) {
                approx_requests += 1;
            }
        } else {
            assert_eq!(
                explanation.mode,
                ExplainMode::Exact,
                "deadline-free PTIME traffic never degrades"
            );
        }
    }
    let stats = tier.stats().aggregate();
    assert_eq!(
        stats.deadline_misses, 0,
        "the anytime tier turns every would-be miss into a bounded answer"
    );
    assert_eq!(hard_requests, approx_requests, "every hard request routed");
    // Identical in-flight hard requests coalesce into one computation,
    // so the counter tracks computations, not responses.
    assert!(
        stats.approx_requests >= 1 && stats.approx_requests <= approx_requests,
        "approx computations: {} for {} approximate answers",
        stats.approx_requests,
        approx_requests
    );
    assert_eq!(stats.queue_depth, 0, "mixed stream fully drained");
    let numbers = HardMixNumbers {
        p50_us: stats.p50_us(),
        p99_us: stats.p99_us(),
        hard_requests,
        approx_requests,
    };
    tier.shutdown();
    numbers
}

/// What the chaos soak (PR 9) measured. The conservation invariant —
/// every submission came back as an answer or a visible retryable
/// reject — is asserted inside the phase; these are the recovery
/// numbers the manifest records.
struct ChaosNumbers {
    recovery_ms: u64,
    submitted: u64,
    answered: u64,
    approx: u64,
    rejected: u64,
    retries: u64,
    hedges: u64,
    reroutes: u64,
    breaker_trips: u64,
    breaker_rejects: u64,
    restarts: u64,
    quarantines: u64,
    panics: u64,
    fault_events: usize,
}

/// Chaos soak: replay a seeded [`FaultPlan`] against a two-shard tier
/// with an aggressive supervisor, retry/hedging, and tight per-tenant
/// breakers — all traffic through `explain_with_retry`, faults keyed on
/// shard request ordinals so the run replays identically for one seed.
///
/// Every drive iteration writes to its tenant first, so each read is a
/// fresh computation (cache hits would not advance the fault ordinals).
/// Harness-level events fire when `shard_progress` passes their
/// ordinal: submission bursts drive the bounded queue toward full, and
/// clock-skew events rewind the injected `ManualClock` the breakers
/// run on (the state machines must survive time moving backwards).
fn chaos_soak(workload: &TenantWorkload, seed: u64, quick: bool) -> ChaosNumbers {
    const SHARDS: usize = 2;
    let (ops, horizon) = if quick {
        (120u64, 40u64)
    } else {
        (600u64, 200u64)
    };
    let tick = Duration::from_millis(3);
    let open_for = Duration::from_millis(30);
    let clock = Arc::new(ManualClock::new());
    let tier = ShardedService::with_clock(
        TierConfig {
            shards: SHARDS,
            admission_limit: 32,
            default_deadline: None,
            retry: RetryPolicy {
                max_attempts: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(40),
                jitter_seed: seed,
                hedge_after: Some(Duration::from_millis(15)),
            },
            breaker: BreakerConfig {
                failure_threshold: 4,
                open_for,
                half_open_probes: 1,
            },
            supervisor: SupervisorConfig {
                tick,
                panic_quarantine: 4,
                stall_ticks: 8,
                miss_rate: 0.9,
                miss_window_min: 8,
                probe_ticks: 2,
            },
            shard: ServiceConfig {
                workers: 1,
                batch_max: 4,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        },
        clock.clone(),
    );

    // Two tenants on different shards, both serving the same (easy,
    // PTIME) database: a deterministic 50/50 ordinal split per shard.
    let spec = &workload.tenants[0];
    let first = tier
        .add_tenant("chaos-0", spec.db.clone())
        .expect("fresh tier");
    let mut pair = [first, first];
    for i in 1..64 {
        let id = tier
            .add_tenant(&format!("chaos-{i}"), spec.db.clone())
            .expect("fresh tier");
        if id.shard() != first.shard() {
            pair = [first, id];
            break;
        }
    }
    assert_ne!(
        pair[0].shard(),
        pair[1].shard(),
        "64 FNV-hashed names cover both shards"
    );
    let by_shard = |s: usize| {
        if pair[0].shard() == s {
            pair[0]
        } else {
            pair[1]
        }
    };

    let plan = FaultPlan::generate(seed, SHARDS, horizon);
    print!("{}", plan.render());
    tier.install_fault_plan(&plan);

    // The plan injects dozens of caught panics; silence only those so
    // the soak output stays readable while real failures still print.
    // The filter stays installed afterwards — it delegates everything
    // that is not a planned chaos panic to the original hook.
    let default_hook = std::panic::take_hook();
    let quiet_hook = Arc::new(default_hook);
    let delegate = Arc::clone(&quiet_hook);
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|msg| msg.contains("chaos hook") || msg.contains("fault plan"));
        if !planned {
            delegate(info);
        }
    }));

    let mut events: Vec<_> = plan.harness_events().copied().collect();
    let mut burst_handles: Vec<PendingExplain> = Vec::new();
    let mut submitted = 0u64;
    let mut answered = 0u64;
    let mut approx = 0u64;
    let mut rejected = 0u64;
    for i in 0..ops {
        clock.advance(Duration::from_millis(1));
        let tenant = pair[(i % 2) as usize];
        // Invalidate the responsibility cache so the read below is a
        // fresh computation and advances the shard's fault ordinal.
        tier.update(tenant, |db| {
            let s = db.relation_id("S").expect("workload schema");
            db.insert_endo(s, vec![Value::str(format!("chaos_w{i}"))]);
        })
        .expect("registered tenant");
        let req = ExplainRequest::why_so(spec.query.clone(), vec![spec.answers[0].clone()]);
        submitted += 1;
        let was_rejected = match tier.explain_with_retry(tenant, req) {
            Ok(resp) => match resp.result {
                Ok(explanation) => {
                    answered += 1;
                    if matches!(explanation.mode, ExplainMode::Approximate { .. }) {
                        approx += 1;
                    }
                    false
                }
                Err(e) => {
                    assert!(e.is_retryable(), "terminal in-band error in soak: {e}");
                    rejected += 1;
                    true
                }
            },
            Err(e) => {
                assert!(e.is_retryable(), "terminal submit error in soak: {e}");
                if let Some(hint) = e.retry_after_hint() {
                    assert!(hint > Duration::ZERO, "reject hints are usable");
                }
                rejected += 1;
                true
            }
        };
        if was_rejected {
            // A reject means a panic streak or an open breaker: advance
            // the injected clock past the breaker window so the tenant
            // can half-open, and give the supervisor a few wall-clock
            // ticks to observe the streak while it is still live.
            clock.advance(open_for);
            std::thread::sleep(3 * tick);
        }
        let progressed: Vec<u64> = (0..SHARDS).map(|s| tier.shard_progress(s)).collect();
        events.retain(|e| {
            if progressed[e.shard] < e.at_ordinal {
                return true;
            }
            match e.kind {
                FaultKind::Burst(n) => {
                    let burst_req =
                        ExplainRequest::why_so(spec.query.clone(), vec![spec.answers[0].clone()]);
                    for _ in 0..n {
                        submitted += 1;
                        match tier.submit(by_shard(e.shard), burst_req.clone()) {
                            Ok(handle) => burst_handles.push(handle),
                            Err(err) => {
                                assert!(
                                    err.is_retryable(),
                                    "burst overrun must reject retryably: {err}"
                                );
                                assert!(
                                    err.retry_after_hint().unwrap_or_default() > Duration::ZERO,
                                    "burst rejects carry a retry-after hint"
                                );
                                rejected += 1;
                            }
                        }
                    }
                }
                FaultKind::ClockSkew(d) => clock.rewind(d),
                _ => unreachable!("harness_events yields only bursts and skews"),
            }
            false
        });
    }
    assert!(
        events.is_empty(),
        "every scheduled harness event fired before the soak ended (seed {seed}): {events:?}"
    );
    for handle in burst_handles {
        let resp = handle
            .wait()
            .expect("restarted pools never lose a queued request");
        match resp.result {
            Ok(_) => answered += 1,
            Err(e) => {
                assert!(e.is_retryable(), "terminal burst error in soak: {e}");
                rejected += 1;
            }
        }
    }
    assert_eq!(
        answered + rejected,
        submitted,
        "zero silent drops: every submission is answered or visibly rejected"
    );

    // Convergence: with the plan cleared, every shard must probe back to
    // Healthy. The time that takes is the headline recovery number.
    tier.clear_faults();
    let drain_start = Instant::now();
    let recovery_ms = loop {
        if (0..SHARDS).all(|s| tier.shard_health(s) == Some(HealthState::Healthy)) {
            break drain_start.elapsed().as_millis().max(1) as u64;
        }
        assert!(
            drain_start.elapsed() < Duration::from_secs(10),
            "tier failed to return to Healthy after the faults stopped"
        );
        std::thread::sleep(tick);
    };

    let stats = tier.stats();
    let agg = stats.aggregate();
    let fe = stats.frontend;
    assert_eq!(agg.queue_depth, 0, "soak fully drained");
    assert!(
        agg.panics_caught >= 5,
        "the plan's panic bursts really fired: {} panics",
        agg.panics_caught
    );
    assert!(
        agg.shard_quarantines >= 1,
        "a wedged shard was quarantined by the supervisor"
    );
    assert!(
        agg.shard_restarts >= 1,
        "the quarantined shard's worker pool was restarted"
    );
    assert!(fe.retries >= 1, "retry/backoff really engaged");
    tier.shutdown();
    ChaosNumbers {
        recovery_ms,
        submitted,
        answered,
        approx,
        rejected,
        retries: fe.retries,
        hedges: fe.hedges,
        reroutes: fe.reroutes,
        breaker_trips: fe.breaker_trips,
        breaker_rejects: fe.breaker_rejects,
        restarts: agg.shard_restarts,
        quarantines: agg.shard_quarantines,
        panics: agg.panics_caught,
        fault_events: plan.events.len(),
    }
}

/// Dump the telemetry artifacts under `target/load_harness/` — never at
/// the repo root, so a bench run leaves the working tree clean.
fn write_artifacts(telemetry: &TierTelemetry, slowlog: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/load_harness");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create {dir}: {e}");
        return;
    }
    let files = [
        (
            format!("{dir}/traces.jsonl"),
            telemetry.traces_jsonl.as_str(),
        ),
        (
            format!("{dir}/metrics.prom"),
            telemetry.metrics_prom.as_str(),
        ),
        (format!("{dir}/slowlog.jsonl"), slowlog),
    ];
    for (path, body) in &files {
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path} ({} bytes)", body.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Isolation: tenant B's warm responsibility cache must survive a write
/// burst against tenant A on a different shard.
fn assert_shard_isolation(workload: &TenantWorkload, shards: usize) {
    let (tier, tenants) = build_tier(workload, shards, 1);
    let (a, b) = {
        let first = tenants[0];
        let other = tenants
            .iter()
            .position(|t| t.shard() != first.shard())
            .expect("enough tenants to cover two shards");
        (0usize, other)
    };

    let spec = &workload.tenants[b];
    let req = ExplainRequest::why_so(spec.query.clone(), vec![spec.answers[0].clone()]);
    let cold = tier.explain(tenants[b], req.clone()).expect("serves");
    assert!(!cold.cache_hit);
    assert!(
        tier.explain(tenants[b], req.clone())
            .expect("serves")
            .cache_hit
    );

    let before = tier.stats().shards[tenants[b].shard()];
    for i in 0..50 {
        tier.update(tenants[a], |db| {
            let s = db.relation_id("S").expect("workload schema");
            db.insert_endo(s, vec![Value::str(format!("iso_w{i}"))]);
        })
        .expect("registered tenant");
    }
    let warm = tier.explain(tenants[b], req).expect("serves");
    assert!(
        warm.cache_hit,
        "writes to tenant A (shard {}) must not cool tenant B (shard {})",
        tenants[a].shard(),
        tenants[b].shard()
    );
    let after = tier.stats().shards[tenants[b].shard()];
    assert_eq!(
        before.index_evictions, after.index_evictions,
        "B's shard saw no cache movement"
    );
    tier.shutdown();
}

/// Overload: with stalled workers and a tiny admission limit, overrun
/// submissions come back as `Overloaded` errors — counted, not dropped —
/// and everything accepted still resolves.
fn assert_admission_control(workload: &TenantWorkload) {
    let tier = ShardedService::new(TierConfig {
        shards: 1,
        admission_limit: 4,
        default_deadline: None,
        shard: ServiceConfig {
            workers: 1,
            batch_max: 1,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });
    let spec = &workload.tenants[0];
    let tenant = tier
        .add_tenant(&spec.name, spec.db.clone())
        .expect("fresh tier");
    tier.inject_delay(|_| Some(Duration::from_millis(20)));

    let req = ExplainRequest::why_so(spec.query.clone(), vec![spec.answers[0].clone()]);
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..64 {
        match tier.submit(tenant, req.clone()) {
            Ok(handle) => accepted.push(handle),
            Err(ServiceError::Overloaded { retry_after }) => {
                assert!(
                    retry_after >= Duration::from_millis(1),
                    "overload rejects carry a usable retry-after hint"
                );
                rejected += 1;
            }
            Err(other) => panic!("only Overloaded is expected, got {other}"),
        }
    }
    assert!(rejected > 0, "the open loop must overrun a limit of 4");
    assert!(!accepted.is_empty(), "admission admits up to the limit");
    for handle in accepted {
        handle
            .wait()
            .expect("service stays up")
            .result
            .expect("accepted requests are served");
    }
    let stats = tier.stats().aggregate();
    assert_eq!(stats.admission_rejects, rejected, "every reject is counted");
    assert_eq!(stats.queue_depth, 0);
    tier.shutdown();
}

fn write_manifest(
    cfg: &HarnessConfig,
    single: &PhaseNumbers,
    sharded: &PhaseNumbers,
    hard_mix: &HardMixNumbers,
    chaos: &ChaosNumbers,
) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_9.json");
    let mut manifest = BenchManifest::new(
        "load_harness",
        9,
        "ops/s",
        cfg.workload.seed,
        "open-loop multi-tenant replay (Zipf-hot tenants, mixed why-so/why-no/top-k reads \
         with interleaved writes) against the sharded serving tier; single_shard uses the \
         same workers per shard; hard_mix interleaves deadline-bound NP-hard triangle \
         requests answered by the anytime tier; chaos soak replays a seeded fault plan \
         through the self-healing front end and records the recovery time",
    );
    manifest.push(
        "throughput_sharded",
        sharded.throughput,
        "ops/s",
        Direction::HigherIsBetter,
    );
    manifest.push(
        "throughput_single_shard",
        single.throughput,
        "ops/s",
        Direction::HigherIsBetter,
    );
    manifest.push(
        "shard_speedup",
        sharded.throughput / single.throughput,
        "x",
        Direction::HigherIsBetter,
    );
    manifest.push(
        "p50_us",
        sharded.p50_us as f64,
        "us",
        Direction::LowerIsBetter,
    );
    manifest.push(
        "p99_us",
        sharded.p99_us as f64,
        "us",
        Direction::LowerIsBetter,
    );
    manifest.push(
        "cache_hit_rate",
        sharded.cache_hit_rate,
        "fraction",
        Direction::HigherIsBetter,
    );
    manifest.push(
        "hard_mix_p99_us",
        hard_mix.p99_us as f64,
        "us",
        Direction::LowerIsBetter,
    );
    manifest.push(
        "hard_mix_p50_us",
        hard_mix.p50_us as f64,
        "us",
        Direction::LowerIsBetter,
    );
    manifest.push(
        "chaos_recovery_ms",
        chaos.recovery_ms as f64,
        "ms",
        Direction::LowerIsBetter,
    );
    manifest.extra("shards", &cfg.shards.to_string());
    manifest.extra("workers_per_shard", &cfg.workers_per_shard.to_string());
    manifest.extra("clients", &CLIENTS.to_string());
    manifest.extra("ops", &cfg.workload.ops.to_string());
    manifest.extra("tenants", &cfg.workload.tenants.to_string());
    manifest.extra("single_shard_p99_us", &single.p99_us.to_string());
    // Informational since PR 9, no longer a gated result: with an
    // open-loop generator running more client threads than cores, the
    // peak is set by how long a client's scheduler slice happens to run
    // uninterrupted, not by the tier's drain behavior — run-to-run
    // swings of 3-4x on the same code put it far outside any honest
    // noise band. Queueing the tier is accountable for is gated through
    // p50_us/p99_us, which come from the same replay.
    manifest.extra("peak_queue_depth", &sharded.peak_queue_depth.to_string());
    manifest.extra("hard_mix_requests", &hard_mix.hard_requests.to_string());
    manifest.extra(
        "hard_mix_approx_answers",
        &hard_mix.approx_requests.to_string(),
    );
    manifest.extra("chaos_fault_events", &chaos.fault_events.to_string());
    manifest.extra("chaos_submitted", &chaos.submitted.to_string());
    manifest.extra("chaos_answered", &chaos.answered.to_string());
    manifest.extra("chaos_approx_answers", &chaos.approx.to_string());
    manifest.extra("chaos_retryable_rejects", &chaos.rejected.to_string());
    manifest.extra("chaos_retries", &chaos.retries.to_string());
    manifest.extra("chaos_hedges", &chaos.hedges.to_string());
    manifest.extra("chaos_reroutes", &chaos.reroutes.to_string());
    manifest.extra("chaos_breaker_trips", &chaos.breaker_trips.to_string());
    manifest.extra("chaos_breaker_rejects", &chaos.breaker_rejects.to_string());
    manifest.extra("chaos_shard_restarts", &chaos.restarts.to_string());
    manifest.extra("chaos_shard_quarantines", &chaos.quarantines.to_string());
    manifest.extra("chaos_panics_caught", &chaos.panics.to_string());
    match manifest.write(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test" || a == "--list");
    let cfg = if quick { quick_config() } else { full_config() };
    let workload = tenant_workload(&cfg.workload);
    println!(
        "load_harness: {} tenants × {} rows, {} ops ({} writes), {} clients",
        workload.tenants.len(),
        cfg.workload.rows_per_tenant,
        workload.ops.len(),
        workload.ops.iter().filter(|op| op.is_write()).count(),
        CLIENTS
    );

    assert_shard_isolation(&workload, cfg.shards.max(2));
    assert_admission_control(&workload);
    let slowlog = assert_slow_log_outlier(&workload);
    let hard_mix = measure_hard_mix(&workload, quick);
    println!(
        "hard mix     : p50 {:>6} us  p99 {:>6} us  {} hard requests, {} answered approximately, 0 deadline misses",
        hard_mix.p50_us, hard_mix.p99_us, hard_mix.hard_requests, hard_mix.approx_requests
    );
    let chaos = chaos_soak(&workload, cfg.workload.seed, quick);
    println!(
        "chaos soak   : {} faults, {} submissions → {} answered + {} retryable rejects (0 lost), \
         {} retries, {} hedges, {} reroutes, {} breaker trips, {} restarts, {} quarantines, \
         recovered in {} ms",
        chaos.fault_events,
        chaos.submitted,
        chaos.answered,
        chaos.rejected,
        chaos.retries,
        chaos.hedges,
        chaos.reroutes,
        chaos.breaker_trips,
        chaos.restarts,
        chaos.quarantines,
        chaos.recovery_ms
    );

    let (single, _) = measure_tier(&workload, 1, cfg.workers_per_shard);
    let (sharded, telemetry) = measure_tier(&workload, cfg.shards, cfg.workers_per_shard);
    println!(
        "single shard : {:>9.0} ops/s  p50 {:>6} us  p99 {:>6} us",
        single.throughput, single.p50_us, single.p99_us
    );
    println!(
        "{} shards     : {:>9.0} ops/s  p50 {:>6} us  p99 {:>6} us  hit rate {:.2}  peak depth {}",
        cfg.shards,
        sharded.throughput,
        sharded.p50_us,
        sharded.p99_us,
        sharded.cache_hit_rate,
        sharded.peak_queue_depth
    );
    println!(
        "telemetry    : {} traces retained across {} shard rings",
        telemetry.traces_sampled, cfg.shards
    );

    write_artifacts(&telemetry, &slowlog);
    if quick {
        println!(
            "load_harness: isolation/admission/slow-log/latency/chaos assertions ok (manifest skipped)"
        );
        return;
    }
    write_manifest(&cfg, &single, &sharded, &hard_mix, &chaos);
}
