//! E16 — Theorem 4.17: Why-No responsibility's contingency search is
//! bounded by the query size, so the per-tuple cost tracks only the
//! lineage computation (polynomial, small), never an exponential search.

use causality_bench::bench_group;
use causality_core::resp::whyno::why_no_responsibility;
use causality_engine::{ConjunctiveQuery, Database, Schema, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A Why-No instance: chain R(x,y), S(y,z), T(z) where the real database
/// is sparse and `n` candidate insertions exist per relation.
fn whyno_instance(n: usize) -> (Database, ConjunctiveQuery, causality_engine::TupleRef) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z"]));
    let mut probe = None;
    for i in 0..n as i64 {
        let rt = db.insert_endo(r, vec![Value::Int(i), Value::Int(100 + i)]);
        db.insert_endo(s, vec![Value::Int(100 + i), Value::Int(200 + i)]);
        db.insert_endo(t, vec![Value::Int(200 + i)]);
        probe.get_or_insert(rt);
    }
    let q = ConjunctiveQuery::parse("q :- R(x, y), S(y, z), T(z)").expect("parses");
    (db, q, probe.expect("n > 0"))
}

fn whyno_flat(c: &mut Criterion) {
    let mut group = bench_group(c, "whyno_flat");
    for n in [50usize, 200, 800] {
        let (db, q, probe) = whyno_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let resp = why_no_responsibility(&db, &q, probe).expect("why-no");
                assert_eq!(
                    resp.min_contingency.as_ref().map(Vec::len),
                    Some(2),
                    "contingency stays at m − 1 = 2 regardless of n"
                );
                resp.rho
            });
        });
    }
    group.finish();
}

criterion_group!(benches, whyno_flat);
criterion_main!(benches);
