//! Ablations for the design choices called out in DESIGN.md §4:
//!
//! * Dinic vs Edmonds–Karp inside Algorithm 1;
//! * the exact solver's greedy upper bound (hitting-set B&B) exercised on
//!   dense vs sparse triangle instances;
//! * C1P testing cost on query-shaped vs adversarial hypergraphs.

use causality_bench::bench_group;
use causality_core::resp::exact::why_so_responsibility_exact;
use causality_core::resp::flow::why_so_responsibility_flow_with;
use causality_datagen::workloads::{chain, triangles, ChainConfig};
use causality_graph::c1p::c1p_order;
use causality_graph::maxflow::FlowAlgorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn maxflow_ablation(c: &mut Criterion) {
    let mut group = bench_group(c, "ablation_maxflow");
    let inst = chain(&ChainConfig {
        atoms: 3,
        tuples_per_relation: 300,
        domain_per_layer: 30,
        seed: 41,
    });
    for (name, algo) in [
        ("dinic", FlowAlgorithm::Dinic),
        ("edmonds_karp", FlowAlgorithm::EdmondsKarp),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &algo, |b, &algo| {
            b.iter(|| {
                why_so_responsibility_flow_with(&inst.db, &inst.query, inst.probe, algo)
                    .expect("flow")
                    .0
                    .rho
            });
        });
    }
    group.finish();
}

fn exact_density_ablation(c: &mut Criterion) {
    let mut group = bench_group(c, "ablation_exact_density");
    // Same tuple count, different domain density: dense instances have
    // many more triangles (larger hitting-set instances).
    for (name, n_values) in [("sparse_dom12", 12usize), ("dense_dom4", 4)] {
        let inst = triangles(n_values, 30, 29);
        group.bench_with_input(BenchmarkId::from_parameter(name), &n_values, |b, _| {
            b.iter(|| {
                why_so_responsibility_exact(&inst.db, &inst.query, inst.probe)
                    .expect("exact")
                    .rho
            });
        });
    }
    group.finish();
}

fn c1p_ablation(c: &mut Criterion) {
    let mut group = bench_group(c, "ablation_c1p");
    // Query-shaped: a 12-atom chain's dual hypergraph (trivially linear).
    let chain_edges: Vec<u64> = (0..11).map(|i| 0b11u64 << i).collect();
    group.bench_function("chain12", |b| {
        b.iter(|| c1p_order(12, &chain_edges).is_some());
    });
    // Adversarial: overlapping wide blocks (forces real backtracking).
    let blocks: Vec<u64> = (0..8)
        .map(|i| ((1u64 << 6) - 1) << i)
        .chain([(1u64 << 13) - 1, 0b1010101010101])
        .collect();
    group.bench_function("wide_blocks13", |b| {
        b.iter(|| c1p_order(13, &blocks).is_some());
    });
    group.finish();
}

criterion_group!(
    benches,
    maxflow_ablation,
    exact_density_ablation,
    c1p_ablation
);
criterion_main!(benches);
