//! E4/E12 — Fig. 4 / Algorithm 1: PTIME scaling of max-flow
//! responsibility on chain queries. The paper claims PTIME data
//! complexity (Theorem 4.5); the series here should grow polynomially
//! with the database size and stay far below the exact solver's
//! exponential growth on hard queries (see fig6_fig7_hardness).

use causality_bench::bench_group;
use causality_core::resp::flow::why_so_responsibility_flow;
use causality_datagen::workloads::{chain, ChainConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig4_alg1_flow(c: &mut Criterion) {
    let mut group = bench_group(c, "fig4_alg1_flow");
    // Scaling in database size (k = 2, the Fig. 4 query).
    for n in [50usize, 200, 800] {
        let inst = chain(&ChainConfig {
            atoms: 2,
            tuples_per_relation: n,
            domain_per_layer: (n / 5).max(2),
            seed: 13,
        });
        group.bench_with_input(BenchmarkId::new("k2_n", n), &n, |b, _| {
            b.iter(|| {
                why_so_responsibility_flow(&inst.db, &inst.query, inst.probe)
                    .expect("flow")
                    .rho
            });
        });
    }
    // Scaling in chain length (fixed n).
    for k in [2usize, 3, 4, 5] {
        let inst = chain(&ChainConfig {
            atoms: k,
            tuples_per_relation: 100,
            domain_per_layer: 12,
            seed: 17,
        });
        group.bench_with_input(BenchmarkId::new("n100_k", k), &k, |b, _| {
            b.iter(|| {
                why_so_responsibility_flow(&inst.db, &inst.query, inst.probe)
                    .expect("flow")
                    .rho
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig4_alg1_flow);
criterion_main!(benches);
