//! lineage_kernels — the interned-arena bitset kernels vs the seed
//! `BTreeSet` implementations, on the workloads the paper stresses.
//!
//! Two input shapes:
//!
//! * **Fig. 2 IMDB** — the n-lineage of one answer of the Burton genre
//!   query over a generated IMDB instance at experiment scale (40 000
//!   movies, 2 000 directors; a ~500-conjunct lineage): same-size
//!   `{director, movie}` conjuncts — the already-minimal shape every
//!   self-join-free lineage has, where the seed minimizer burns n²/2
//!   full subset walks and the hitting-set greedy rebuilds a `HashMap`
//!   per pick.
//! * **Adversarial dense DNF** — a seeded random DNF with heavy conjunct
//!   overlap (mixed sizes 2–6 over a small universe), making absorption
//!   actually fire during minimization, plus a clustered hitting-set
//!   instance whose greedy bound is optimal (so both solvers prune at
//!   the root and the measured work is pure set scanning).
//!
//! Four kernels are compared — minimize, assign (restrict true/false),
//! hitting set, minimum contingency — each asserted result-identical
//! between oracle and bitset paths *in the bench itself*. Besides the
//! Criterion timings, the bench self-measures before/after ns/iter and
//! writes the machine-readable `BENCH_5.json` at the repo root so the
//! perf trajectory is tracked across PRs.

use causality_bench::{bench_group, BenchManifest, Direction};
use causality_core::resp::exact::{
    min_contingency_from_lineage, min_hitting_set, min_hitting_set_bits, oracle,
};
use causality_datagen::imdb::{burton_genre_query, generate, ImdbConfig};
use causality_engine::{TupleRef, Value};
use causality_lineage::{n_lineage, oracle as lineage_oracle, Conjunct, Dnf, LineageArena};
use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The Fig. 2 ranking workload at experiment scale: the (unminimized)
/// n-lineage of one answer of the Burton genre query over a generated
/// IMDB instance, its minimized form, and a Burton-director tuple from
/// the lineage (the kind of candidate Fig. 2b ranks).
///
/// The paper's figure grounds on `Musical`; at generator scale that
/// genre is Zipf-rare, so the *kernel* workload grounds on the most
/// popular genre (`Drama`) — same query, same schema, same generator,
/// but a lineage of thousands of `{director, movie}` conjuncts, which
/// is the shape the paper's scaling experiments stress.
fn imdb_workload() -> (Dnf, Dnf, TupleRef) {
    let (db, refs) = generate(&ImdbConfig {
        directors: 2000,
        movies: 40_000,
        ..ImdbConfig::default()
    });
    let q = burton_genre_query().ground(&[Value::from("Drama")]);
    let phi = n_lineage(&db, &q).expect("IMDB lineage");
    let phin = phi.minimized();
    let candidate = phin
        .variables()
        .into_iter()
        .find(|t| t.rel == refs.ids.director)
        .expect("some Burton directs a Drama");
    (phi, phin, candidate)
}

/// Adversarial dense DNF: heavy overlap, mixed conjunct sizes, seeded.
fn dense_dnf() -> Dnf {
    let mut rng = StdRng::seed_from_u64(5);
    let conjuncts = (0..350)
        .map(|_| {
            let size = rng.gen_range(2usize..=6);
            Conjunct::new((0..size).map(|_| TupleRef::new(0, rng.gen_range(0u32..96))))
        })
        .collect();
    Dnf::new(conjuncts)
}

/// Clustered hitting-set instance: 120 hub elements, 4 two-element sets
/// per hub. Greedy picks the hubs (optimal), the disjoint packing
/// matches it, and branch-and-bound prunes at the root — the measured
/// cost is the greedy's per-pick frequency scan, which is exactly where
/// bitsets replace per-element `HashMap` traffic.
fn clustered_sets() -> Vec<BTreeSet<TupleRef>> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sets = Vec::new();
    for hub in 0u32..120 {
        for _ in 0..4 {
            let spoke = 1000 + rng.gen_range(0u32..600);
            sets.push([TupleRef::new(0, hub), TupleRef::new(1, spoke)].into());
        }
    }
    sets
}

/// The hitting-set instance the exact solver derives for `t` on a
/// minimized lineage: residuals `c' ∖ witness` for conjuncts `c' ∌ t`.
fn contingency_residuals(phin: &Dnf, t: TupleRef) -> Vec<BTreeSet<TupleRef>> {
    let witness = phin
        .conjuncts()
        .iter()
        .find(|c| c.contains(t))
        .expect("t is a cause");
    phin.conjuncts()
        .iter()
        .filter(|c| !c.contains(t))
        .map(|c| c.vars().filter(|v| !witness.contains(*v)).collect())
        .collect()
}

/// Self-measured mean ns/iter: warm once, then run until the budget (or
/// an iteration floor) is met. `quick` mode (CI smoke) runs one
/// iteration, enough to exercise the in-bench identity assertions.
fn measure<T>(quick: bool, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    if quick {
        return f64::NAN;
    }
    let budget = Duration::from_millis(400);
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        black_box(f());
        iters += 1;
        if iters >= 5 && start.elapsed() >= budget {
            break;
        }
        if iters >= 10_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
}

struct KernelRow {
    op: &'static str,
    before_ns: f64,
    after_ns: f64,
}

impl KernelRow {
    fn ratio(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

/// The before/after comparison: every kernel asserted result-identical,
/// then timed on both implementations.
fn compare_kernels(quick: bool) -> Vec<KernelRow> {
    let (phi, phin, tim) = imdb_workload();
    let dense = dense_dnf();
    let clustered = clustered_sets();
    let residuals = contingency_residuals(&phin, tim);
    println!(
        "workloads: imdb lineage {} conjuncts ({} minimized, {} vars), \
         dense {} conjuncts, hitting instance {} sets",
        phi.len(),
        phin.len(),
        phin.variables().len(),
        dense.len(),
        residuals.len()
    );

    // Result identity first: the bench never times diverging kernels.
    assert_eq!(phi.minimized(), lineage_oracle::minimized(&phi));
    assert_eq!(dense.minimized(), lineage_oracle::minimized(&dense));
    assert_eq!(
        min_hitting_set(&residuals, None),
        oracle::min_hitting_set(&residuals, None)
    );
    assert_eq!(
        min_hitting_set(&clustered, None),
        oracle::min_hitting_set(&clustered, None)
    );
    assert_eq!(
        min_contingency_from_lineage(&phin, tim),
        oracle::min_contingency_from_lineage(&phin, tim)
    );

    // Arena-form hitting-set inputs: what the contingency solver hands
    // the kernel on the hot path (the `BTreeSet` boundary is compat
    // only), interned once here exactly as `min_contingency_bits` does.
    let intern_sets =
        |sets: &[BTreeSet<TupleRef>]| -> (Vec<TupleRef>, Vec<causality_lineage::VarSet>) {
            let mut universe: Vec<TupleRef> = sets.iter().flatten().copied().collect();
            universe.sort_unstable();
            universe.dedup();
            let bit_sets = sets
                .iter()
                .map(|s| {
                    s.iter()
                        .map(|t| universe.binary_search(t).expect("in universe"))
                        .collect()
                })
                .collect();
            (universe, bit_sets)
        };
    let (res_universe, res_bits) = intern_sets(&residuals);
    let (clu_universe, clu_bits) = intern_sets(&clustered);
    let resolve = |universe: &[TupleRef], hit: Option<Vec<u32>>| {
        hit.map(|h| {
            h.into_iter()
                .map(|id| universe[id as usize])
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(
        resolve(&res_universe, min_hitting_set_bits(&res_bits, None)),
        oracle::min_hitting_set(&residuals, None)
    );
    assert_eq!(
        resolve(&clu_universe, min_hitting_set_bits(&clu_bits, None)),
        oracle::min_hitting_set(&clustered, None)
    );

    // Restriction masks: every 5th variable true, every 7th false.
    let vars: Vec<TupleRef> = phi.variables().into_iter().collect();
    let mask_true: BTreeSet<TupleRef> = vars.iter().step_by(5).copied().collect();
    let mask_false: BTreeSet<TupleRef> = vars.iter().step_by(7).copied().collect();
    let (arena, bits) = LineageArena::from_dnf(&phi);
    let bit_true: causality_lineage::VarSet = mask_true
        .iter()
        .map(|&t| arena.id(t).expect("lineage var") as usize)
        .collect();
    let bit_false: causality_lineage::VarSet = mask_false
        .iter()
        .map(|&t| arena.id(t).expect("lineage var") as usize)
        .collect();
    assert_eq!(
        arena.dnf_of(&bits.assign_true(&bit_true)),
        phi.assign_true(&mask_true)
    );
    assert_eq!(
        arena.dnf_of(&bits.assign_false(&bit_false)),
        phi.assign_false(&mask_false)
    );

    vec![
        KernelRow {
            op: "minimize/imdb",
            before_ns: measure(quick, || lineage_oracle::minimized(&phi)),
            after_ns: measure(quick, || phi.minimized()),
        },
        KernelRow {
            op: "minimize/dense",
            before_ns: measure(quick, || lineage_oracle::minimized(&dense)),
            after_ns: measure(quick, || dense.minimized()),
        },
        KernelRow {
            op: "assign/imdb",
            before_ns: measure(quick, || {
                (phi.assign_true(&mask_true), phi.assign_false(&mask_false))
            }),
            after_ns: measure(quick, || {
                (bits.assign_true(&bit_true), bits.assign_false(&bit_false))
            }),
        },
        KernelRow {
            op: "hitting_set/imdb",
            before_ns: measure(quick, || oracle::min_hitting_set(&residuals, None)),
            after_ns: measure(quick, || min_hitting_set_bits(&res_bits, None)),
        },
        KernelRow {
            op: "hitting_set/imdb_compat",
            before_ns: measure(quick, || oracle::min_hitting_set(&residuals, None)),
            after_ns: measure(quick, || min_hitting_set(&residuals, None)),
        },
        KernelRow {
            op: "hitting_set/clustered",
            before_ns: measure(quick, || oracle::min_hitting_set(&clustered, None)),
            after_ns: measure(quick, || min_hitting_set_bits(&clu_bits, None)),
        },
        KernelRow {
            op: "contingency/imdb",
            before_ns: measure(quick, || oracle::min_contingency_from_lineage(&phin, tim)),
            after_ns: measure(quick, || min_contingency_from_lineage(&phin, tim)),
        },
    ]
}

/// Write the machine-readable perf record at the repo root, in the
/// shared manifest schema `xtask bench-gate` validates. The gated
/// results are the unitless before/after speedup ratios (durable across
/// hosts); the raw ns go into `extra`.
fn write_bench_json(rows: &[KernelRow]) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_5.json");
    let mut manifest = BenchManifest::new(
        "lineage_kernels",
        5,
        "speedup ratio",
        5,
        "before = seed BTreeSet kernels (oracle), after = interned arena bitset kernels; \
         value = before/after speedup",
    );
    for r in rows {
        manifest.push(r.op, r.ratio(), "x", Direction::HigherIsBetter);
        manifest.extra(
            &format!("{}_ns", r.op),
            &format!(
                "{{\"before\": {:.0}, \"after\": {:.0}}}",
                r.before_ns, r.after_ns
            ),
        );
    }
    match manifest.write(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn print_comparison() {
    let quick = std::env::args().any(|a| a == "--test" || a == "--list");
    let rows = compare_kernels(quick);
    if quick {
        println!("lineage_kernels: oracle/bitset identity checks ok (timings skipped)");
        return;
    }
    println!("--- lineage kernels: seed BTreeSet (before) vs arena bitsets (after) ---");
    println!(
        "{:<24} {:>14} {:>14} {:>8}",
        "op", "before ns", "after ns", "ratio"
    );
    for r in &rows {
        println!(
            "{:<24} {:>14.0} {:>14.0} {:>7.1}x",
            r.op,
            r.before_ns,
            r.after_ns,
            r.ratio()
        );
    }
    write_bench_json(&rows);
}

/// Criterion registration of the bitset-side kernels, so the suite's
/// usual `cargo bench` output covers them too.
fn lineage_kernels(c: &mut Criterion) {
    let (phi, phin, tim) = imdb_workload();
    let dense = dense_dnf();
    let residuals = contingency_residuals(&phin, tim);
    let mut group = bench_group(c, "lineage_kernels");
    group.bench_function("minimize_imdb", |b| b.iter(|| phi.minimized()));
    group.bench_function("minimize_dense", |b| b.iter(|| dense.minimized()));
    group.bench_function("hitting_set_imdb", |b| {
        b.iter(|| min_hitting_set(&residuals, None))
    });
    group.bench_function("contingency_imdb", |b| {
        b.iter(|| min_contingency_from_lineage(&phin, tim))
    });
    group.finish();
}

criterion_group!(benches, lineage_kernels);

// Custom entry point instead of `criterion_main!`: the before/after
// comparison (and BENCH_5.json) runs exactly once per invocation,
// before the Criterion-registered kernels.
fn main() {
    print_comparison();
    benches();
}
