//! E1 — Fig. 1: evaluating the Burton genre query at increasing IMDB
//! sizes (query answering is the substrate everything else builds on).

use causality_bench::bench_group;
use causality_datagen::imdb::{burton_genre_query, generate, ImdbConfig};
use causality_engine::evaluate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig1_query_eval(c: &mut Criterion) {
    let mut group = bench_group(c, "fig1_query_eval");
    for movies in [200usize, 800, 3200] {
        let (db, _) = generate(&ImdbConfig {
            directors: movies / 5,
            movies,
            ..ImdbConfig::default()
        });
        let q = burton_genre_query();
        group.bench_with_input(BenchmarkId::from_parameter(movies), &movies, |b, _| {
            b.iter(|| evaluate(&db, &q).expect("evaluates").answers.len());
        });
    }
    group.finish();
}

criterion_group!(benches, fig1_query_eval);
criterion_main!(benches);
