//! Write throughput under structural sharing: publishing an update that
//! touches 1 of N relations must cost O(touched data), not O(database).
//!
//! Three measurements, each swept over the relation count N:
//!
//! * `publish_touch_one/N` — a `SnapshotStore::update` flipping one
//!   endogenous flag in one relation. With per-relation `Arc`s this
//!   clones only the touched relation, so the cost is flat in N.
//! * `deep_clone_all/N` — the pre-structural-sharing baseline: deep-clone
//!   every relation, the price each publication used to pay. Grows
//!   linearly with N.
//! * `warm_read_after_unrelated_write` — a point-lookup read through one
//!   shared index cache keyed on per-relation content stamps, with an
//!   unrelated relation rewritten between every read: the touched
//!   relation re-stamps, the query's relations keep their stamps, so no
//!   index is ever rebuilt.
//!
//! A self-measured before/after note prints the same comparison in plain
//! numbers ahead of the Criterion timings (README quotes it).

use causality_bench::bench_group;
use causality_engine::eval::evaluate_with_cache;
use causality_engine::{
    ConjunctiveQuery, Database, RowId, Schema, SharedIndexCache, SnapshotStore, Value,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// Tuples stored per relation.
const ROWS: i64 = 1000;

/// Relation counts swept by the scaling measurements.
const SIZES: [usize; 3] = [4, 16, 64];

/// A database of `n_rels` binary relations `R0..R{n-1}`, each holding
/// `ROWS` endogenous tuples `(j, j+1)`.
fn database(n_rels: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n_rels {
        let rel = db.add_relation(Schema::new(format!("R{i}"), &["x", "y"]));
        for j in 0..ROWS {
            db.insert_endo(rel, vec![Value::from(j), Value::from(j + 1)]);
        }
    }
    db
}

/// The read workload: a point lookup whose evaluation is a couple of
/// hash probes, so the cost of a cold call is dominated by building the
/// R0/R1 indexes — exactly what the content-stamp keying keeps warm.
fn read_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(z) :- R0(0, y), R1(y, z)").unwrap()
}

/// A writer that flips one endogenous flag in `rel` per call — constant
/// work besides the copy-on-write clone of the touched relation.
fn flip_one(db: &mut Database, rel: &str, step: i64) {
    let rel = db.relation_id(rel).unwrap();
    let row = RowId((step % ROWS) as u32);
    let flag = (step / ROWS) % 2 == 0;
    db.relation_mut(rel).set_endogenous(row, flag);
}

/// Mean wall-clock of `iters` runs of `f`, in microseconds.
fn mean_micros(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// Deep-clone every relation — the cost a whole-database copy-on-write
/// paid per publication before structural sharing.
fn deep_clone_all(db: &Database) -> usize {
    db.relations().map(|(_, r)| r.clone().len()).sum()
}

fn print_before_after_note() {
    println!("--- write_throughput: O(touched) publication vs O(database) clone ---");
    println!(
        "{:>10} {:>18} {:>18} {:>8}",
        "relations", "touch-1 µs", "deep-clone µs", "ratio"
    );
    for &n in &SIZES {
        let store = SnapshotStore::new(database(n));
        let mut step = 0i64;
        let touch = mean_micros(20, || {
            let snap = store.update(|db| {
                flip_one(db, "R0", step);
                step += 1;
            });
            black_box(snap.version());
        });
        let db = store.current().to_database();
        let clone = mean_micros(20, || {
            black_box(deep_clone_all(&db));
        });
        println!(
            "{n:>10} {touch:>18.1} {clone:>18.1} {:>7.1}x",
            clone / touch
        );
    }

    // Warm reads across writes: the shared index cache keeps serving the
    // R0/R1 indexes while R{n-1} is rewritten between every read.
    let n = *SIZES.last().unwrap();
    let store = SnapshotStore::new(database(n));
    let q = read_query();
    let cache = SharedIndexCache::new();
    let cold = mean_micros(10, || {
        let fresh = SharedIndexCache::new();
        black_box(
            evaluate_with_cache(&store.current(), &q, &fresh)
                .unwrap()
                .answers
                .len(),
        );
    });
    evaluate_with_cache(&store.current(), &q, &cache).unwrap();
    let unrelated = format!("R{}", n - 1);
    let mut step = 0i64;
    let warm_after_write = mean_micros(50, || {
        let snap = store.update(|db| {
            flip_one(db, &unrelated, step);
            step += 1;
        });
        black_box(
            evaluate_with_cache(&snap, &q, &cache)
                .unwrap()
                .answers
                .len(),
        );
    });
    println!("cold read (indexes rebuilt per call):    {cold:>10.1} µs");
    println!(
        "warm read incl. one unrelated write:     {warm_after_write:>10.1} µs ({:.1}x)",
        cold / warm_after_write
    );
    println!("---------------------------------------------------------------------");
}

fn write_throughput(c: &mut Criterion) {
    print_before_after_note();
    let mut group = bench_group(c, "write_throughput");

    for &n in &SIZES {
        let store = SnapshotStore::new(database(n));
        let mut step = 0i64;
        group.bench_function(format!("publish_touch_one/{n}"), |b| {
            b.iter(|| {
                let snap = store.update(|db| {
                    flip_one(db, "R0", step);
                    step += 1;
                });
                snap.version()
            });
        });

        let db = database(n);
        group.bench_function(format!("deep_clone_all/{n}"), |b| {
            b.iter(|| deep_clone_all(&db));
        });
    }

    let n = *SIZES.last().unwrap();
    let store = SnapshotStore::new(database(n));
    let q = read_query();
    let cache = SharedIndexCache::new();
    evaluate_with_cache(&store.current(), &q, &cache).unwrap();
    let unrelated = format!("R{}", n - 1);
    let mut step = 0i64;
    group.bench_function("warm_read_after_unrelated_write", |b| {
        b.iter(|| {
            let snap = store.update(|db| {
                flip_one(db, &unrelated, step);
                step += 1;
            });
            evaluate_with_cache(&snap, &q, &cache)
                .unwrap()
                .answers
                .len()
        });
    });

    group.finish();
}

criterion_group!(benches, write_throughput);
criterion_main!(benches);
