//! E6/E7 — the NP-hard side: exact responsibility on h1* (vertex-cover
//! instances, Fig. 6) and on random triangle (h2*) databases. The series
//! grow super-polynomially with instance size — contrast with
//! fig4_alg1_flow's polynomial growth; the crossover is the dichotomy
//! made visible.

use causality_bench::bench_group;
use causality_core::resp::exact::why_so_responsibility_exact;
use causality_datagen::workloads::triangles;
use causality_reductions::h1_vc::{reduce_vc_to_h1, TripartiteHypergraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn h1_hardness(c: &mut Criterion) {
    let mut group = bench_group(c, "fig6_h1_exact");
    let mut rng = StdRng::seed_from_u64(5);
    for edges in [4usize, 8, 12] {
        let sizes = (3usize, 3usize, 3usize);
        let h = TripartiteHypergraph {
            sizes,
            edges: (0..edges)
                .map(|_| {
                    (
                        rng.gen_range(0..sizes.0),
                        rng.gen_range(0..sizes.1),
                        rng.gen_range(0..sizes.2),
                    )
                })
                .collect(),
        };
        let inst = reduce_vc_to_h1(&h);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| {
                why_so_responsibility_exact(&inst.db, &inst.query, inst.witness)
                    .expect("exact")
                    .rho
            });
        });
    }
    group.finish();
}

fn h2_hardness(c: &mut Criterion) {
    let mut group = bench_group(c, "fig7_h2_exact");
    for m in [10usize, 20, 40] {
        let inst = triangles(5, m, 23);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                why_so_responsibility_exact(&inst.db, &inst.query, inst.probe)
                    .expect("exact")
                    .rho
            });
        });
    }
    group.finish();
}

criterion_group!(benches, h1_hardness, h2_hardness);
criterion_main!(benches);
