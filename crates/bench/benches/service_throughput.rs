//! Service throughput on the Fig. 2 IMDB workload: cold explains (fresh
//! `Explainer` per call, indexes rebuilt every time — the pre-service
//! behaviour) vs warm index-cache explains vs fully warm service calls
//! answered from the responsibility LRU.
//!
//! Besides the Criterion timings, the bench prints a self-measured
//! before/after note quantifying both cache layers, so the index-sharing
//! win is visible in plain bench output.

use causality_bench::bench_group;
use causality_core::explain::Explainer;
use causality_datagen::imdb::{burton_genre_query, generate, ImdbConfig};
use causality_engine::Value;
use causality_service::{CausalityService, ExplainRequest, ServiceConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn workload() -> (
    causality_engine::Database,
    causality_engine::ConjunctiveQuery,
) {
    let (db, _) = generate(&ImdbConfig {
        directors: 40,
        movies: 200,
        ..ImdbConfig::default()
    });
    (db, burton_genre_query())
}

/// Mean wall-clock of `iters` runs of `f`.
fn mean_micros(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// The before/after note for the index-cache and responsibility-cache
/// layers, printed once before the Criterion timings.
fn print_before_after_note() {
    let (db, q) = workload();
    let answer = [Value::from("Musical")];
    let iters = 10;

    // Before: every call builds a fresh Explainer, so the evaluator's
    // hash indexes are rebuilt per call (the pre-service behaviour).
    let cold = mean_micros(iters, || {
        let n = Explainer::new(&db, &q)
            .why(&answer)
            .expect("explains")
            .causes
            .len();
        black_box(n);
    });

    // After (layer 1): one Explainer reused — the SharedIndexCache built
    // on the first call serves every subsequent one.
    let explainer = Explainer::new(&db, &q);
    explainer.why(&answer).expect("prime");
    let warm_index = mean_micros(iters, || {
        let n = explainer.why(&answer).expect("explains").causes.len();
        black_box(n);
    });

    // After (layer 2): the full service with the responsibility LRU —
    // repeated identical requests are cache hits.
    let svc = CausalityService::with_config(
        db.clone(),
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    let req = ExplainRequest::why_so(q.clone(), answer.to_vec());
    svc.explain(req.clone()).expect("prime");
    let warm_service = mean_micros(iters, || {
        let resp = svc.explain(req.clone()).expect("explains");
        black_box(resp.cache_hit);
    });

    println!("--- service_throughput before/after (Fig. 2 IMDB, 200 movies) ---");
    println!("cold explain (indexes rebuilt per call): {cold:>10.1} µs/call");
    println!(
        "warm shared index cache:                 {warm_index:>10.1} µs/call ({:.1}x)",
        cold / warm_index
    );
    println!(
        "warm service (responsibility LRU hit):   {warm_service:>10.1} µs/call ({:.1}x)",
        cold / warm_service
    );
    println!("------------------------------------------------------------------");
}

fn service_throughput(c: &mut Criterion) {
    print_before_after_note();
    let (db, q) = workload();
    let answer = [Value::from("Musical")];

    let mut group = bench_group(c, "service_throughput");

    group.bench_function("cold_explainer_per_call", |b| {
        b.iter(|| {
            Explainer::new(&db, &q)
                .why(&answer)
                .expect("explains")
                .causes
                .len()
        });
    });

    let explainer = Explainer::new(&db, &q);
    explainer.why(&answer).expect("prime");
    group.bench_function("warm_shared_index_cache", |b| {
        b.iter(|| explainer.why(&answer).expect("explains").causes.len());
    });

    let svc = CausalityService::with_config(
        db.clone(),
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    let req = ExplainRequest::why_so(q.clone(), answer.to_vec());
    svc.explain(req.clone()).expect("prime");
    group.bench_function("warm_service_lru_hit", |b| {
        b.iter(|| svc.explain(req.clone()).expect("explains").cache_hit);
    });

    // End-to-end batch throughput: 32 mixed requests fanned through the
    // pool (duplicates coalesce, distinct answers share the index cache).
    let genres = ["Musical", "Drama", "Comedy", "Horror"];
    group.bench_function("pool_32_mixed_requests", |b| {
        b.iter(|| {
            let pending: Vec<_> = (0..32)
                .map(|i| {
                    let genre = genres[i % genres.len()];
                    svc.submit(ExplainRequest::why_so(q.clone(), vec![Value::from(genre)]))
                        .expect("submit")
                })
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("response").result.is_ok() as usize)
                .sum::<usize>()
        });
    });

    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
