//! E3 — Fig. 3: the dichotomy classifier across the query catalogue.
//! Classification is query-complexity only (no data), so these run in
//! microseconds — the point is that certificates come essentially free.

use causality_bench::bench_group;
use causality_core::dichotomy::classify::classify_why_so;
use causality_engine::ConjunctiveQuery;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig3_classifier(c: &mut Criterion) {
    let mut group = bench_group(c, "fig3_classifier");
    for (name, text) in [
        ("linear_chain2", "q :- R^n(x, y), S^n(y, z)"),
        (
            "fig5a_linear7",
            "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        ),
        (
            "weakly_linear_ex412",
            "q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)",
        ),
        ("hard_h2", "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)"),
        (
            "hard_4cycle",
            "q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)",
        ),
        (
            "hard_h3",
            "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
        ),
    ] {
        let q = ConjunctiveQuery::parse(text).expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(name), &q, |b, q| {
            b.iter(|| classify_why_so(q).expect("classifies").label());
        });
    }
    group.finish();
}

criterion_group!(benches, fig3_classifier);
criterion_main!(benches);
