//! E2 — Fig. 2b: the full explanation pipeline (causes + responsibility
//! ranking) on the Musical answer, exact micro-instance and scaled IMDB.

use causality_bench::bench_group;
use causality_core::explain::Explainer;
use causality_core::ranking::Method;
use causality_datagen::imdb::{burton_genre_query, fig2a_instance, generate, ImdbConfig};
use causality_engine::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig2_ranking(c: &mut Criterion) {
    let mut group = bench_group(c, "fig2_ranking");

    let (micro, _) = fig2a_instance();
    let q = burton_genre_query();
    group.bench_function("micro_instance", |b| {
        b.iter(|| {
            Explainer::new(&micro, &q)
                .why(&[Value::from("Musical")])
                .expect("explains")
                .causes
                .len()
        });
    });

    for movies in [200usize, 800] {
        let (db, _) = generate(&ImdbConfig {
            directors: movies / 5,
            movies,
            ..ImdbConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("scaled", movies), &movies, |b, _| {
            b.iter(|| {
                Explainer::new(&db, &q)
                    .with_method(Method::Auto)
                    .why(&[Value::from("Musical")])
                    .expect("explains")
                    .causes
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig2_ranking);
criterion_main!(benches);
