//! `cargo run -p xtask -- <command>` — repo automation.
//!
//! Commands:
//!
//! * `bench-gate [--root DIR] [--tolerance FRACTION] [--latest FILE]` —
//!   validate every `BENCH_*.json` manifest at the repo root against
//!   the shared schema (version 1) and fail on any perf regression
//!   beyond the noise band (default ±25%) between consecutive PRs of
//!   the same bench. `--latest` additionally compares a
//!   freshly-generated manifest against the newest committed one of the
//!   same bench.
//! * `trace-report FILE [FILE...]` — validate request-trace JSONL dumps
//!   (`traces.jsonl` / `slowlog.jsonl`, as written by the load harness
//!   or `export_traces`) against the `RequestTrace` schema and print a
//!   per-stage latency breakdown (count / p50 / p99 / max) per file.
//!   Any schema violation fails the run after listing every offending
//!   line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod json;
mod trace_report;

use gate::DEFAULT_TOLERANCE;

fn usage() -> ! {
    eprintln!(
        "usage: cargo run -p xtask -- bench-gate [--root DIR] [--tolerance FRACTION] [--latest FILE]\n       cargo run -p xtask -- trace-report FILE [FILE...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-gate") => bench_gate(&args[1..]),
        Some("trace-report") => trace_report_cmd(&args[1..]),
        _ => usage(),
    }
}

fn trace_report_cmd(paths: &[String]) {
    if paths.is_empty() {
        usage();
    }
    let mut failed = false;
    for path in paths {
        match trace_report::run_report(path) {
            Ok(report) => println!("{report}"),
            Err(violations) => {
                failed = true;
                eprintln!("trace-report: {path}: FAILED");
                for v in violations {
                    eprintln!("  {v}");
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn bench_gate(args: &[String]) {
    // Default root: the workspace this xtask was compiled in, so the
    // gate works from any working directory.
    let mut root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut latest: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().cloned().unwrap_or_else(|| usage()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| usage())
            }
            "--latest" => latest = Some(it.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    match gate::run_gate(&root, tolerance, latest.as_deref()) {
        Ok(report) => print!("{report}"),
        Err(violations) => {
            eprintln!("bench-gate: FAILED");
            for v in violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
