//! `trace-report` — validate a request-trace JSONL dump (as written by
//! the load harness / `export_traces`) and render a per-stage latency
//! breakdown.
//!
//! Every line must be one JSON object matching the `RequestTrace`
//! schema: required scalar fields with the right types, a known request
//! kind and outcome, and a non-empty `stages` array whose entries name
//! known stages with non-negative integer timings and non-decreasing
//! start offsets. All violations are collected (with line numbers)
//! before failing, so one bad record doesn't mask the rest.
//!
//! The report aggregates `dur_us` per stage across every valid record
//! and prints count / p50 / p99 / max per stage plus an end-to-end
//! total row.

use crate::json::{parse, Json};

/// The serving-path stages, in pipeline order.
///
/// Keep in sync with `Stage::ALL` in `crates/telemetry/src/trace.rs`
/// (xtask stays dependency-free on purpose, so the names are duplicated
/// here; `tests/telemetry_tracing.rs` pins the same list end-to-end).
pub const STAGES: [&str; 10] = [
    "admission",
    "retry",
    "dispatch",
    "shard_queue",
    "worker_dequeue",
    "snapshot_pin",
    "lineage_intern",
    "kernel_solve",
    "approx_refine",
    "respond",
];

const KINDS: [&str; 3] = ["why_so", "why_no", "rank_top_k"];

const OUTCOMES: [&str; 10] = [
    "ok",
    "disconnected",
    "queue_full",
    "overloaded",
    "circuit_open",
    "deadline_exceeded",
    "timeout",
    "invalid_request",
    "error",
    "panicked",
];

/// Per-stage duration samples plus the end-to-end totals.
#[derive(Debug, Default)]
struct Aggregate {
    /// `durations[i]` collects `dur_us` for `STAGES[i]`.
    durations: Vec<Vec<u64>>,
    totals: Vec<u64>,
    records: usize,
    /// `outcomes[i]` counts records whose outcome is `OUTCOMES[i]`.
    outcomes: Vec<usize>,
}

/// Validate `text` (JSONL) and aggregate it. Returns the aggregate or
/// every violation found, each prefixed with its 1-based line number.
fn validate(text: &str) -> Result<Aggregate, Vec<String>> {
    let mut agg = Aggregate {
        durations: vec![Vec::new(); STAGES.len()],
        outcomes: vec![0; OUTCOMES.len()],
        ..Aggregate::default()
    };
    let mut violations = Vec::new();
    let mut saw_line = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        saw_line = true;
        let n = idx + 1;
        match parse(line) {
            Err(e) => violations.push(format!("line {n}: not JSON: {e}")),
            Ok(doc) => {
                let before = violations.len();
                check_record(&doc, n, &mut violations);
                if violations.len() == before {
                    aggregate_record(&doc, &mut agg);
                }
            }
        }
    }
    if !saw_line {
        violations.push("no records: the file is empty".to_string());
    }
    if violations.is_empty() {
        Ok(agg)
    } else {
        Err(violations)
    }
}

/// A non-negative integer (JSON numbers arrive as `f64`).
fn as_uint(value: &Json) -> Option<u64> {
    value
        .as_f64()
        .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64)
        .map(|n| n as u64)
}

fn check_record(doc: &Json, n: usize, out: &mut Vec<String>) {
    let mut fail = |msg: String| out.push(format!("line {n}: {msg}"));

    for key in [
        "seq",
        "shard",
        "tenant",
        "relations",
        "lineage_conjuncts",
        "snapshot_version",
        "total_us",
    ] {
        match doc.get(key) {
            None => fail(format!("missing required field {key:?}")),
            Some(v) if as_uint(v).is_none() => {
                fail(format!("{key:?} must be a non-negative integer"))
            }
            Some(_) => {}
        }
    }
    for key in ["cache_hit", "coalesced"] {
        match doc.get(key) {
            Some(Json::Bool(_)) => {}
            _ => fail(format!("{key:?} must be a boolean")),
        }
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(kind) if KINDS.contains(&kind) => {}
        Some(kind) => fail(format!("unknown kind {kind:?}")),
        None => fail("missing or non-string \"kind\"".to_string()),
    }
    match doc.get("outcome").and_then(Json::as_str) {
        Some(outcome) if OUTCOMES.contains(&outcome) => {}
        Some(outcome) => fail(format!("unknown outcome {outcome:?}")),
        None => fail("missing or non-string \"outcome\"".to_string()),
    }
    match doc.get("dichotomy") {
        Some(Json::Str(_)) => {}
        _ => fail("\"dichotomy\" must be a string".to_string()),
    }
    match doc.get("rho_max").and_then(Json::as_f64) {
        Some(rho) if rho >= 0.0 => {}
        _ => fail("\"rho_max\" must be a non-negative number".to_string()),
    }
    match doc.get("deadline_slack_us") {
        Some(Json::Null) => {}
        // Slack is signed: a missed deadline reports how far over it went.
        Some(Json::Num(slack)) if slack.fract() == 0.0 => {}
        _ => fail("\"deadline_slack_us\" must be null or an integer".to_string()),
    }

    let Some(stages) = doc.get("stages").and_then(Json::as_arr) else {
        fail("\"stages\" must be an array".to_string());
        return;
    };
    if stages.is_empty() {
        fail("\"stages\" must not be empty".to_string());
    }
    let mut prev_start: Option<u64> = None;
    for (i, span) in stages.iter().enumerate() {
        match span.get("stage").and_then(Json::as_str) {
            Some(name) if STAGES.contains(&name) => {}
            Some(name) => fail(format!("stages[{i}]: unknown stage {name:?}")),
            None => fail(format!("stages[{i}]: missing stage name")),
        }
        let start = span.get("start_us").and_then(as_uint);
        if start.is_none() {
            fail(format!(
                "stages[{i}]: \"start_us\" must be a non-negative integer"
            ));
        }
        if span.get("dur_us").and_then(as_uint).is_none() {
            fail(format!(
                "stages[{i}]: \"dur_us\" must be a non-negative integer"
            ));
        }
        if let (Some(prev), Some(cur)) = (prev_start, start) {
            if cur < prev {
                fail(format!(
                    "stages[{i}]: start_us {cur} goes backwards (previous stage started at {prev})"
                ));
            }
        }
        prev_start = start.or(prev_start);
    }
}

/// Fold one already-validated record into the aggregate.
fn aggregate_record(doc: &Json, agg: &mut Aggregate) {
    agg.records += 1;
    if let Some(total) = doc.get("total_us").and_then(as_uint) {
        agg.totals.push(total);
    }
    if let Some(slot) = doc
        .get("outcome")
        .and_then(Json::as_str)
        .and_then(|outcome| OUTCOMES.iter().position(|o| *o == outcome))
    {
        agg.outcomes[slot] += 1;
    }
    let Some(stages) = doc.get("stages").and_then(Json::as_arr) else {
        return;
    };
    for span in stages {
        let (Some(name), Some(dur)) = (
            span.get("stage").and_then(Json::as_str),
            span.get("dur_us").and_then(as_uint),
        ) else {
            continue;
        };
        if let Some(slot) = STAGES.iter().position(|s| *s == name) {
            agg.durations[slot].push(dur);
        }
    }
}

/// Exact quantile over a sorted sample (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn render(path: &str, agg: &Aggregate) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace-report: {path} — {} records, schema ok\n\n",
        agg.records
    ));
    out.push_str(&format!(
        "{:<16} {:>7} {:>10} {:>10} {:>10}\n",
        "stage", "count", "p50_us", "p99_us", "max_us"
    ));
    for (i, name) in STAGES.iter().enumerate() {
        let mut durs = agg.durations[i].clone();
        durs.sort_unstable();
        out.push_str(&format!(
            "{:<16} {:>7} {:>10} {:>10} {:>10}\n",
            name,
            durs.len(),
            quantile(&durs, 0.50),
            quantile(&durs, 0.99),
            durs.last().copied().unwrap_or(0),
        ));
    }
    let mut totals = agg.totals.clone();
    totals.sort_unstable();
    out.push_str(&format!(
        "{:<16} {:>7} {:>10} {:>10} {:>10}\n",
        "total (e2e)",
        totals.len(),
        quantile(&totals, 0.50),
        quantile(&totals, 0.99),
        totals.last().copied().unwrap_or(0),
    ));
    // Recovery timeline (PR 9): how much of the traffic needed healing —
    // retried submissions (their `retry` span is the backoff wait, so
    // the stage row above gives the wait distribution) and every
    // non-`ok` outcome the tier answered with.
    let retry_slot = STAGES
        .iter()
        .position(|s| *s == "retry")
        .expect("retry is a known stage");
    out.push_str(&format!(
        "\nrecovery: {} of {} records were backed-off retries\n",
        agg.durations[retry_slot].len(),
        agg.records
    ));
    for (i, name) in OUTCOMES.iter().enumerate() {
        if agg.outcomes[i] > 0 {
            out.push_str(&format!("  outcome {:<18} {:>7}\n", name, agg.outcomes[i]));
        }
    }
    out
}

/// Validate one JSONL file and return the rendered report, or every
/// violation found.
pub fn run_report(path: &str) -> Result<String, Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let agg = validate(&text)?;
    Ok(render(path, &agg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(extra: &str) -> String {
        format!(
            r#"{{"seq":1,"shard":0,"tenant":0,"kind":"why_so","outcome":"ok","cache_hit":false,"coalesced":false,"relations":2,"dichotomy":"PTIME","lineage_conjuncts":1,"rho_max":0.5,"snapshot_version":1,"deadline_slack_us":null,"total_us":42,"stages":[{{"stage":"admission","start_us":0,"dur_us":1}},{{"stage":"respond","start_us":40,"dur_us":2}}]{extra}}}"#
        )
    }

    #[test]
    fn a_valid_record_aggregates() {
        let agg = validate(&record("")).expect("valid");
        assert_eq!(agg.records, 1);
        assert_eq!(agg.totals, vec![42]);
        assert_eq!(agg.durations[0], vec![1]);
        let respond = STAGES.iter().position(|s| *s == "respond").unwrap();
        assert_eq!(agg.durations[respond], vec![2]);
        assert_eq!(agg.outcomes[0], 1, "outcome \"ok\" counted");
    }

    #[test]
    fn retry_stage_and_circuit_open_outcome_are_accepted() {
        let retried = record("").replace(
            r#"{"stage":"admission","start_us":0,"dur_us":1}"#,
            r#"{"stage":"admission","start_us":0,"dur_us":0},{"stage":"retry","start_us":0,"dur_us":7}"#,
        );
        let agg = validate(&retried).expect("retry is schema-valid");
        let slot = STAGES.iter().position(|s| *s == "retry").unwrap();
        assert_eq!(agg.durations[slot], vec![7]);
        let table = render("x.jsonl", &agg);
        assert!(
            table.contains("recovery: 1 of 1 records were backed-off retries"),
            "{table}"
        );

        let shed = record("").replace("\"outcome\":\"ok\"", "\"outcome\":\"circuit_open\"");
        let agg = validate(&shed).expect("circuit_open is schema-valid");
        let slot = OUTCOMES.iter().position(|o| *o == "circuit_open").unwrap();
        assert_eq!(agg.outcomes[slot], 1);
        assert!(render("x.jsonl", &agg).contains("outcome circuit_open"));
    }

    #[test]
    fn approx_refine_stage_is_accepted_and_aggregated() {
        let with_refine = record("").replace(
            r#"{"stage":"respond","start_us":40,"dur_us":2}"#,
            r#"{"stage":"approx_refine","start_us":30,"dur_us":9},{"stage":"respond","start_us":40,"dur_us":2}"#,
        );
        let agg = validate(&with_refine).expect("approx_refine is schema-valid");
        let slot = STAGES.iter().position(|s| *s == "approx_refine").unwrap();
        assert_eq!(agg.durations[slot], vec![9]);
    }

    #[test]
    fn violations_carry_line_numbers_and_accumulate() {
        let text = format!(
            "{}\n{}\n{}",
            record(""),
            record("").replace("\"why_so\"", "\"maybe_so\""),
            record("").replace("\"outcome\":\"ok\"", "\"outcome\":\"shrug\"")
        );
        let errs = validate(&text).unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].starts_with("line 2:") && errs[0].contains("maybe_so"));
        assert!(errs[1].starts_with("line 3:") && errs[1].contains("shrug"));
    }

    #[test]
    fn unknown_stage_names_are_rejected() {
        let bad = record("").replace("\"admission\"", "\"teleport\"");
        let errs = validate(&bad).unwrap_err();
        assert!(errs[0].contains("unknown stage \"teleport\""), "{errs:?}");
    }

    #[test]
    fn backwards_stage_starts_are_rejected() {
        let bad = record("")
            .replace("\"start_us\":40", "\"start_us\":0")
            .replace(
                "\"stage\":\"admission\",\"start_us\":0",
                "\"stage\":\"admission\",\"start_us\":9",
            );
        let errs = validate(&bad).unwrap_err();
        assert!(errs[0].contains("goes backwards"), "{errs:?}");
    }

    #[test]
    fn missing_fields_and_bad_types_are_rejected() {
        let missing = record("").replace("\"seq\":1,", "");
        assert!(validate(&missing).unwrap_err()[0].contains("\"seq\""));
        let negative = record("").replace("\"total_us\":42", "\"total_us\":-3");
        assert!(validate(&negative).unwrap_err()[0].contains("total_us"));
        let fractional = record("").replace("\"shard\":0", "\"shard\":0.5");
        assert!(validate(&fractional).unwrap_err()[0].contains("shard"));
        assert!(validate("")
            .unwrap_err()
            .iter()
            .any(|e| e.contains("empty")));
    }

    #[test]
    fn signed_slack_is_accepted() {
        let over = record("").replace("\"deadline_slack_us\":null", "\"deadline_slack_us\":-120");
        assert!(validate(&over).is_ok());
    }

    #[test]
    fn report_renders_every_stage_row() {
        let agg = validate(&record("")).unwrap();
        let table = render("x.jsonl", &agg);
        for stage in STAGES {
            assert!(table.contains(stage), "missing {stage} in:\n{table}");
        }
        assert!(table.contains("total (e2e)"));
        assert!(table.contains("1 records, schema ok"));
    }

    #[test]
    fn nearest_rank_quantiles() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[7], 0.99), 7);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.5), 2);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.99), 4);
    }
}
