//! The bench gate: schema validation and direction-aware regression
//! checking over the repo's `BENCH_*.json` manifests.
//!
//! Every manifest must match schema version 1 (see
//! `causality_bench::manifest`). Manifests of the same bench are
//! ordered by recording PR and compared pairwise: a `higher_is_better`
//! result regresses by *dropping*, a `lower_is_better` one by *rising*,
//! in both cases beyond the noise tolerance (default ±25%). Any schema
//! violation or regression fails the gate — and CI.

use crate::json::{parse, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default noise band: a result must move more than this fraction in
/// the *worse* direction to count as a regression.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Which way is better for a result (mirrors the writer's enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better.
    Higher,
    /// Smaller values are better.
    Lower,
}

/// One gated measurement of a manifest.
#[derive(Clone, Debug)]
pub struct GateResult {
    /// Stable name, matched across manifests of the same bench.
    pub name: String,
    /// The value; `None` means "not measured this run" (JSON `null`).
    pub value: Option<f64>,
    /// The unit (informational).
    pub unit: String,
    /// Which way is better.
    pub direction: Direction,
}

/// One parsed, schema-valid manifest.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Where it came from (for messages).
    pub file: String,
    /// The bench that produced it.
    pub bench: String,
    /// The PR that recorded it.
    pub pr: u32,
    /// Its gated results.
    pub results: Vec<GateResult>,
}

fn field<'j>(doc: &'j Json, errors: &mut Vec<String>, file: &str, key: &str) -> Option<&'j Json> {
    let value = doc.get(key);
    if value.is_none() {
        errors.push(format!("{file}: missing required field \"{key}\""));
    }
    value
}

fn str_field(doc: &Json, errors: &mut Vec<String>, file: &str, key: &str) -> String {
    match field(doc, errors, file, key).map(|v| v.as_str()) {
        Some(Some(s)) => s.to_string(),
        Some(None) => {
            errors.push(format!("{file}: field \"{key}\" must be a string"));
            String::new()
        }
        None => String::new(),
    }
}

fn uint_field(doc: &Json, errors: &mut Vec<String>, file: &str, key: &str) -> u64 {
    match field(doc, errors, file, key).map(|v| v.as_f64()) {
        Some(Some(n)) if n >= 0.0 && n == n.trunc() => n as u64,
        Some(_) => {
            errors.push(format!(
                "{file}: field \"{key}\" must be a non-negative integer"
            ));
            0
        }
        None => 0,
    }
}

/// Parse and schema-validate one manifest. Returns every violation
/// found, not just the first.
pub fn parse_manifest(file: &str, text: &str) -> Result<Manifest, Vec<String>> {
    let doc = parse(text).map_err(|e| vec![format!("{file}: not valid JSON: {e}")])?;
    let mut errors = Vec::new();

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(1.0) => {}
        Some(v) => errors.push(format!("{file}: unsupported schema_version {v} (want 1)")),
        None => errors.push(format!("{file}: missing required field \"schema_version\"")),
    }
    let bench = str_field(&doc, &mut errors, file, "bench");
    let pr = uint_field(&doc, &mut errors, file, "pr") as u32;
    str_field(&doc, &mut errors, file, "unit");
    str_field(&doc, &mut errors, file, "git_rev");
    uint_field(&doc, &mut errors, file, "host_parallelism");
    uint_field(&doc, &mut errors, file, "seed");

    let mut results = Vec::new();
    match field(&doc, &mut errors, file, "results").map(|v| v.as_arr()) {
        Some(Some(items)) => {
            if items.is_empty() {
                errors.push(format!("{file}: \"results\" must not be empty"));
            }
            for (i, item) in items.iter().enumerate() {
                let at = format!("{file}: results[{i}]");
                let name = match item.get("name").and_then(Json::as_str) {
                    Some(name) if !name.is_empty() => name.to_string(),
                    _ => {
                        errors.push(format!("{at}: missing or empty \"name\""));
                        continue;
                    }
                };
                let value = match item.get("value") {
                    Some(Json::Null) => None,
                    Some(v) => match v.as_f64() {
                        Some(n) => Some(n),
                        None => {
                            errors.push(format!("{at}: \"value\" must be a number or null"));
                            continue;
                        }
                    },
                    None => {
                        errors.push(format!("{at}: missing \"value\""));
                        continue;
                    }
                };
                let unit = match item.get("unit").and_then(Json::as_str) {
                    Some(u) => u.to_string(),
                    None => {
                        errors.push(format!("{at}: missing \"unit\""));
                        continue;
                    }
                };
                let direction = match item.get("direction").and_then(Json::as_str) {
                    Some("higher_is_better") => Direction::Higher,
                    Some("lower_is_better") => Direction::Lower,
                    other => {
                        errors.push(format!(
                            "{at}: \"direction\" must be higher_is_better or lower_is_better, got {other:?}"
                        ));
                        continue;
                    }
                };
                if results.iter().any(|r: &GateResult| r.name == name) {
                    errors.push(format!("{at}: duplicate result name {name:?}"));
                    continue;
                }
                results.push(GateResult {
                    name,
                    value,
                    unit,
                    direction,
                });
            }
        }
        Some(None) => errors.push(format!("{file}: \"results\" must be an array")),
        None => {}
    }

    if errors.is_empty() {
        Ok(Manifest {
            file: file.to_string(),
            bench,
            pr,
            results,
        })
    } else {
        Err(errors)
    }
}

/// Direction-aware regression check of `newer` against `older`.
/// Returns one message per regressed result; names present in only one
/// manifest (and `null` values) are skipped.
pub fn regressions(older: &Manifest, newer: &Manifest, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for new in &newer.results {
        let Some(old) = older.results.iter().find(|r| r.name == new.name) else {
            continue;
        };
        let (Some(before), Some(after)) = (old.value, new.value) else {
            continue;
        };
        let regressed = match new.direction {
            Direction::Higher => after < before * (1.0 - tolerance),
            Direction::Lower => after > before * (1.0 + tolerance),
        };
        if regressed {
            let worse = match new.direction {
                Direction::Higher => "dropped",
                Direction::Lower => "rose",
            };
            out.push(format!(
                "{bench}/{name}: {worse} beyond the ±{pct:.0}% band — {before} → {after} {unit} ({old_file} pr {old_pr} vs {new_file} pr {new_pr})",
                bench = newer.bench,
                name = new.name,
                pct = tolerance * 100.0,
                unit = new.unit,
                old_file = older.file,
                old_pr = older.pr,
                new_file = newer.file,
                new_pr = newer.pr,
            ));
        }
    }
    out
}

/// List the `BENCH_*.json` files directly under `root`, sorted by name.
fn manifest_paths(root: &str) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut paths: Vec<_> = std::fs::read_dir(root)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Run the full gate over `root`: validate every `BENCH_*.json`, then
/// compare consecutive PRs of each bench. With `latest`, additionally
/// compare that freshly-generated manifest against the newest committed
/// manifest of the same bench (other than itself) — the CI hook for
/// "did this run regress the recorded trajectory?".
///
/// Returns the human-readable report, or every violation found.
pub fn run_gate(root: &str, tolerance: f64, latest: Option<&str>) -> Result<String, Vec<String>> {
    let paths = manifest_paths(root).map_err(|e| vec![format!("cannot read {root}: {e}")])?;
    if paths.is_empty() {
        return Err(vec![format!("no BENCH_*.json manifests under {root}")]);
    }

    let mut errors = Vec::new();
    let mut manifests = Vec::new();
    for path in &paths {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("BENCH_?.json")
            .to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                errors.push(format!("{file}: unreadable: {e}"));
                continue;
            }
        };
        match parse_manifest(&file, &text) {
            Ok(manifest) => manifests.push(manifest),
            Err(mut es) => errors.append(&mut es),
        }
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "bench-gate: {} manifest(s) under {root}, tolerance ±{:.0}%",
        manifests.len(),
        tolerance * 100.0
    );

    // Group by bench, order by recording PR, compare consecutive pairs.
    let mut by_bench: BTreeMap<&str, Vec<&Manifest>> = BTreeMap::new();
    for m in &manifests {
        by_bench.entry(&m.bench).or_default().push(m);
    }
    for (bench, group) in &mut by_bench {
        group.sort_by_key(|m| m.pr);
        let _ = writeln!(
            report,
            "  {bench}: {} ({} result(s) each at most)",
            group
                .iter()
                .map(|m| format!("{} [pr {}]", m.file, m.pr))
                .collect::<Vec<_>>()
                .join(" → "),
            group.iter().map(|m| m.results.len()).max().unwrap_or(0)
        );
        for pair in group.windows(2) {
            errors.extend(regressions(pair[0], pair[1], tolerance));
        }
    }

    if let Some(latest_path) = latest {
        let text = std::fs::read_to_string(latest_path)
            .map_err(|e| vec![format!("{latest_path}: unreadable: {e}")])?;
        let fresh = parse_manifest(latest_path, &text)?;
        let baseline = manifests
            .iter()
            .filter(|m| m.bench == fresh.bench && m.file != fresh.file)
            .max_by_key(|m| m.pr);
        match baseline {
            Some(baseline) => {
                let _ = writeln!(
                    report,
                    "  latest {latest_path} vs committed {} [pr {}]",
                    baseline.file, baseline.pr
                );
                errors.extend(regressions(baseline, &fresh, tolerance));
            }
            None => {
                let _ = writeln!(
                    report,
                    "  latest {latest_path}: no committed baseline for bench {:?} — nothing to compare",
                    fresh.bench
                );
            }
        }
    }

    if errors.is_empty() {
        let _ = writeln!(report, "bench-gate: OK");
        Ok(report)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(bench: &str, pr: u32, results: &[(&str, f64, &str)]) -> String {
        let rows: Vec<String> = results
            .iter()
            .map(|(name, value, direction)| {
                format!(
                    "{{\"name\": \"{name}\", \"value\": {value}, \"unit\": \"u\", \"direction\": \"{direction}\"}}"
                )
            })
            .collect();
        format!(
            "{{\"schema_version\": 1, \"bench\": \"{bench}\", \"pr\": {pr}, \"unit\": \"u\", \
             \"git_rev\": \"abc\", \"host_parallelism\": 1, \"seed\": 0, \"note\": \"\", \
             \"results\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn valid_manifest_parses() {
        let m = parse_manifest(
            "BENCH_9.json",
            &manifest("demo", 9, &[("x", 2.0, "higher_is_better")]),
        )
        .unwrap();
        assert_eq!(m.bench, "demo");
        assert_eq!(m.pr, 9);
        assert_eq!(m.results.len(), 1);
        assert_eq!(m.results[0].direction, Direction::Higher);
    }

    #[test]
    fn schema_violations_are_all_reported() {
        let errs = parse_manifest(
            "B.json",
            r#"{"schema_version": 2, "bench": "d", "results": [{"name": "", "value": 1}]}"#,
        )
        .unwrap_err();
        let text = errs.join("\n");
        for needle in [
            "unsupported schema_version 2",
            "missing required field \"pr\"",
            "missing required field \"git_rev\"",
            "missing required field \"host_parallelism\"",
            "missing required field \"seed\"",
            "missing or empty \"name\"",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn null_values_and_unknown_names_are_skipped() {
        let old =
            parse_manifest("a", &manifest("d", 1, &[("x", 10.0, "higher_is_better")])).unwrap();
        let new = parse_manifest(
            "b",
            r#"{"schema_version": 1, "bench": "d", "pr": 2, "unit": "u", "git_rev": "r",
                "host_parallelism": 1, "seed": 0, "note": "",
                "results": [{"name": "x", "value": null, "unit": "u", "direction": "higher_is_better"},
                            {"name": "fresh", "value": 1.0, "unit": "u", "direction": "higher_is_better"}]}"#,
        )
        .unwrap();
        assert!(regressions(&old, &new, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn fabricated_2x_regression_fails_the_gate() {
        // A higher-is-better result halving is far outside ±25%.
        let old = parse_manifest(
            "a",
            &manifest("d", 5, &[("speedup", 4.0, "higher_is_better")]),
        )
        .unwrap();
        let new = parse_manifest(
            "b",
            &manifest("d", 6, &[("speedup", 2.0, "higher_is_better")]),
        )
        .unwrap();
        let violations = regressions(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("dropped"), "{violations:?}");

        // And a lower-is-better latency doubling fails too.
        let old =
            parse_manifest("a", &manifest("d", 5, &[("p99", 100.0, "lower_is_better")])).unwrap();
        let new =
            parse_manifest("b", &manifest("d", 6, &[("p99", 200.0, "lower_is_better")])).unwrap();
        let violations = regressions(&old, &new, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("rose"), "{violations:?}");
    }

    #[test]
    fn noise_band_and_improvements_pass() {
        let old = parse_manifest(
            "a",
            &manifest(
                "d",
                5,
                &[
                    ("tput", 100.0, "higher_is_better"),
                    ("p99", 100.0, "lower_is_better"),
                ],
            ),
        )
        .unwrap();
        // 20% worse on both: inside the ±25% band.
        let noisy = parse_manifest(
            "b",
            &manifest(
                "d",
                6,
                &[
                    ("tput", 80.0, "higher_is_better"),
                    ("p99", 120.0, "lower_is_better"),
                ],
            ),
        )
        .unwrap();
        assert!(regressions(&old, &noisy, DEFAULT_TOLERANCE).is_empty());
        // Better on both: always passes.
        let better = parse_manifest(
            "b",
            &manifest(
                "d",
                6,
                &[
                    ("tput", 500.0, "higher_is_better"),
                    ("p99", 10.0, "lower_is_better"),
                ],
            ),
        )
        .unwrap();
        assert!(regressions(&old, &better, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn gate_runs_over_a_directory_and_fails_on_regression() {
        let dir = std::env::temp_dir().join(format!("bench-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let root = dir.to_str().unwrap();
        std::fs::write(
            dir.join("BENCH_1.json"),
            manifest("d", 1, &[("x", 10.0, "higher_is_better")]),
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_2.json"),
            manifest("d", 2, &[("x", 9.0, "higher_is_better")]),
        )
        .unwrap();
        let report = run_gate(root, DEFAULT_TOLERANCE, None).unwrap();
        assert!(report.contains("bench-gate: OK"), "{report}");

        // Fabricate a 2× regression in a third manifest: gate fails.
        std::fs::write(
            dir.join("BENCH_3.json"),
            manifest("d", 3, &[("x", 4.5, "higher_is_better")]),
        )
        .unwrap();
        let errors = run_gate(root, DEFAULT_TOLERANCE, None).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("d/x")), "{errors:?}");

        // --latest compares against the newest committed manifest.
        let fresh = dir.join("fresh.json");
        std::fs::write(&fresh, manifest("d", 3, &[("x", 2.0, "higher_is_better")])).unwrap();
        std::fs::remove_file(dir.join("BENCH_3.json")).unwrap();
        let errors = run_gate(root, DEFAULT_TOLERANCE, Some(fresh.to_str().unwrap())).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("dropped")), "{errors:?}");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
