//! A minimal recursive-descent JSON parser — just enough to read
//! `BENCH_*.json` manifests without external dependencies (the build
//! environment is offline; no serde).
//!
//! Supports the full JSON value grammar with one deliberate limit:
//! numbers are parsed as `f64` (bench manifests carry measurements, not
//! 64-bit identifiers).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` — manifest field order is irrelevant.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        // Surrogate pairs don't occur in our manifests;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let slice = bytes
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("bad UTF-8 in string")?;
                out.push_str(slice);
                *pos += len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "x"}, null], "c": {"d": 2}}"#).unwrap();
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(2.0)
        );
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn parses_unicode_and_escapes() {
        assert_eq!(
            parse("\"µs → ok \\u0041\"").unwrap(),
            Json::Str("µs → ok A".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "12 34", "\"open", "{\"a\": nul}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_a_real_manifest_shape() {
        let doc = parse(
            r#"{
  "schema_version": 1,
  "bench": "demo",
  "results": [
    {"name": "x", "value": 1.5, "unit": "ops/s", "direction": "higher_is_better"},
    {"name": "skipped", "value": null, "unit": "x", "direction": "lower_is_better"}
  ]
}"#,
        )
        .unwrap();
        assert_eq!(doc.get("schema_version").and_then(Json::as_f64), Some(1.0));
        let results = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results[1].get("value"), Some(&Json::Null));
    }
}
