//! Panic-isolation regression test for the explanation service: a
//! panicking job must cost exactly one response — never a worker, and
//! never the pool.
//!
//! Before the `catch_unwind` boundary, a panic inside a worker died with
//! the thread and poisoned the shared request-queue / cache mutexes:
//! every later request then either panicked on the poisoned lock or
//! hung forever on a dead pool. This test drives more panicking jobs
//! than there are workers (so an un-isolated pool would be fully dead),
//! then proves every worker still serves, under a hard timeout so a
//! regression fails fast instead of hanging CI.

use causality::prelude::*;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_deadline(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("panic isolation scenario exceeded {HARD_TIMEOUT:?} — dead pool?")
        }
    }
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
}

fn seed_database() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [("a2", "a1"), ("a3", "a3"), ("a4", "a3"), ("a4", "a2")] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

#[test]
fn pool_survives_panicking_requests() {
    with_deadline(|| {
        const WORKERS: usize = 3;
        let svc = Arc::new(CausalityService::with_config(
            seed_database(),
            ServiceConfig {
                workers: WORKERS,
                queue_capacity: 16,
                batch_max: 4,
                ..ServiceConfig::default()
            },
        ));
        // Chaos hook: every request for the marker answer panics inside
        // the worker that computes it.
        svc.inject_fault(|req| req.answer == vec![Value::str("a3")]);

        // Twice as many panicking jobs as workers: without isolation the
        // whole pool would be dead after the first wave. Distinct `k`s
        // keep the requests from coalescing into one computation, so
        // every single one panics in some worker.
        let poisoned: Vec<_> = (0..2 * WORKERS)
            .map(|k| {
                svc.submit(ExplainRequest::rank_top_k(
                    query(),
                    vec![Value::str("a3")],
                    k + 1,
                ))
                .expect("submit accepts the request")
            })
            .collect();
        for pending in poisoned {
            let resp = pending.wait().expect("a response arrives — not a hangup");
            match resp.result {
                Err(ServiceError::Panicked(msg)) => {
                    assert!(msg.contains("fault injected"), "panic message: {msg}")
                }
                other => panic!("expected ServiceError::Panicked, got {other:?}"),
            }
        }

        // All workers are still alive and serving: flood the pool with
        // more concurrent healthy requests than workers, from multiple
        // submitter threads (panics must not have poisoned the queue
        // mutex either).
        svc.clear_faults();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for _ in 0..3 * WORKERS {
                        for answer in ["a2", "a4"] {
                            let resp = svc
                                .explain(ExplainRequest::why_so(query(), vec![Value::str(answer)]))
                                .expect("pool accepts work after the panics");
                            let explanation =
                                resp.result.expect("healthy requests compute cleanly");
                            assert!(!explanation.causes.is_empty());
                        }
                    }
                });
            }
        });

        let stats = svc.stats();
        assert_eq!(
            stats.panics_caught,
            2 * WORKERS as u64,
            "every injected panic was caught, none escaped"
        );
        // The poisoned requests produced no cache entries; the healthy
        // ones were computed once each and then served warm.
        assert!(stats.cache_hits > 0, "cache still works after the panics");

        // A panicking job mixed into a batch with healthy ones only
        // takes down its own response.
        svc.inject_fault(|req| req.answer == vec![Value::str("a3")]);
        let mixed: Vec<_> = ["a2", "a3", "a4", "a2"]
            .iter()
            .map(|a| {
                svc.submit(ExplainRequest::why_so(query(), vec![Value::str(a)]))
                    .expect("submit")
            })
            .collect();
        let results: Vec<_> = mixed.into_iter().map(|p| p.wait().unwrap()).collect();
        assert!(matches!(results[1].result, Err(ServiceError::Panicked(_))));
        for i in [0usize, 2, 3] {
            assert!(
                results[i].result.is_ok(),
                "batch-mate {i} unaffected by the panicking job"
            );
        }

        // Clean shutdown still drains and joins.
        Arc::try_unwrap(svc)
            .unwrap_or_else(|_| panic!("all users done"))
            .shutdown();
    });
}

#[test]
fn rank_top_k_served_in_parallel_is_bit_identical() {
    with_deadline(|| {
        // The served RankTopK path (parallel, pruned) must agree with a
        // direct sequential library ranking.
        let svc = CausalityService::with_config(
            seed_database(),
            ServiceConfig {
                workers: 2,
                rank_parallelism: 4,
                ..ServiceConfig::default()
            },
        );
        let db = seed_database();
        let q = query();
        for answer in ["a2", "a3", "a4"] {
            for k in 1..=3usize {
                let served = svc
                    .explain(ExplainRequest::rank_top_k(
                        q.clone(),
                        vec![Value::str(answer)],
                        k,
                    ))
                    .unwrap()
                    .expect_explanation();
                let mut reference = Explainer::new(&db, &q).why(&[Value::str(answer)]).unwrap();
                reference.causes.truncate(k);
                assert_eq!(
                    served, reference,
                    "served top-{k} for {answer} is bit-identical to sequential"
                );
            }
        }
        let stats = svc.stats();
        assert!(stats.rank_tasks >= 1, "fresh rankings were computed");
    });
}
