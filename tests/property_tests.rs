//! Property-based tests over the core invariants (proptest).
//!
//! Randomized instances cross-validate the fast algorithms against their
//! reference oracles:
//!
//! * lineage-based causes (Thm. 3.2) ≡ brute-force Def. 2.1 search;
//! * Algorithm 1 (max-flow) ≡ exact branch-and-bound on linear queries;
//! * the generated Datalog program (Thm. 3.4) ≡ Theorem 3.2 causes;
//! * DNF minimization preserves semantics;
//! * C1P search agrees with exhaustive permutation checking.

use causality::prelude::*;
use causality_core::causes::{brute_force_why_so, why_so_causes};
use causality_core::resp::exact::why_so_responsibility_exact;
use causality_core::resp::flow::why_so_responsibility_flow;
use causality_lineage::{Conjunct, Dnf};
use proptest::prelude::*;

/// A small random database for q :- R(x,y), S(y) with mixed natures.
fn rs_database(r_rows: &[(u8, u8, bool)], s_rows: &[(u8, bool)]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for &(x, y, endo) in r_rows {
        db.insert(
            r,
            vec![Value::from(i64::from(x)), Value::from(i64::from(y))],
            endo,
        );
    }
    for &(y, endo) in s_rows {
        db.insert(s, vec![Value::from(i64::from(y))], endo);
    }
    let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap();
    (db, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.2 agrees with literal Def. 2.1 on random instances.
    #[test]
    fn causes_match_brute_force(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 0..6),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 0..4),
    ) {
        let (db, q) = rs_database(&r_rows, &s_rows);
        let fast = why_so_causes(&db, &q).unwrap();
        let brute = brute_force_why_so(&db, &q).unwrap();
        prop_assert_eq!(fast, brute);
    }

    /// Algorithm 1 equals the exact solver on random linear instances
    /// with fully-endogenous relations.
    #[test]
    fn flow_matches_exact(
        r_rows in prop::collection::vec((0u8..3, 0u8..3), 1..8),
        s_rows in prop::collection::vec((0u8..3, 0u8..4), 1..8),
    ) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y", "z"]));
        for &(x, y) in &r_rows {
            db.insert_endo(r, vec![Value::from(i64::from(x)), Value::from(i64::from(y))]);
        }
        for &(y, z) in &s_rows {
            db.insert_endo(s, vec![Value::from(i64::from(y)), Value::from(100 + i64::from(z))]);
        }
        let q = ConjunctiveQuery::parse("q :- R(x, y), S(y, z)").unwrap();
        for t in db.endogenous_tuples() {
            let flow = why_so_responsibility_flow(&db, &q, t).unwrap();
            let exact = why_so_responsibility_exact(&db, &q, t).unwrap();
            prop_assert_eq!(flow.rho, exact.rho, "tuple {:?}", t);
        }
    }

    /// The Theorem 3.4 Datalog program agrees with Theorem 3.2 causes on
    /// random self-join-free instances with mixed natures.
    #[test]
    fn datalog_program_matches_lineage_causes(
        r_rows in prop::collection::vec((0u8..2, 0u8..2, any::<bool>()), 0..5),
        s_rows in prop::collection::vec((0u8..2, any::<bool>()), 0..4),
    ) {
        use causality_core::fo::run_causal_program;
        let (db, q) = rs_database(&r_rows, &s_rows);
        let program_causes = run_causal_program(&db, &q).unwrap();
        let lineage_causes = why_so_causes(&db, &q).unwrap();
        let mut expected: std::collections::BTreeMap<String, Vec<Tuple>> = Default::default();
        for t in &lineage_causes.actual {
            expected
                .entry(db.relation(t.rel).name().to_string())
                .or_default()
                .push(db.tuple(*t).clone());
        }
        for v in expected.values_mut() {
            v.sort();
        }
        for (rel, tuples) in &program_causes {
            let want = expected.get(rel).cloned().unwrap_or_default();
            prop_assert_eq!(tuples, &want, "relation {}", rel);
        }
    }

    /// DNF minimization preserves the Boolean function.
    #[test]
    fn dnf_minimization_preserves_semantics(
        conjuncts in prop::collection::vec(
            prop::collection::btree_set(0u32..6, 0..4),
            0..8,
        ),
    ) {
        let dnf = Dnf::new(
            conjuncts
                .iter()
                .map(|c| Conjunct::new(c.iter().map(|&v| TupleRef::new(0, v))))
                .collect(),
        );
        let min = dnf.minimized();
        for mask in 0u32..64 {
            let truth = |t: TupleRef| mask & (1 << t.row.0) != 0;
            prop_assert_eq!(dnf.evaluate(truth), min.evaluate(truth), "mask {}", mask);
        }
        // Minimality: no conjunct is a strict superset of another.
        for (i, a) in min.conjuncts().iter().enumerate() {
            for (j, b) in min.conjuncts().iter().enumerate() {
                if i != j {
                    prop_assert!(!b.is_strict_subset(a));
                }
            }
        }
    }

    /// The C1P backtracking search agrees with exhaustive permutation
    /// checking on random hypergraphs with 5 vertices.
    #[test]
    fn c1p_matches_exhaustive(edges in prop::collection::vec(0u64..32, 0..5)) {
        use causality_graph::c1p::{c1p_order, is_consecutive_under};
        let n = 5;
        let fast = c1p_order(n, &edges);
        // Exhaustive check over all 120 permutations.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut found = false;
        permutohedron_heap(&mut perm, &mut |p: &[usize]| {
            if is_consecutive_under(&edges, p) {
                found = true;
            }
        });
        prop_assert_eq!(fast.is_some(), found, "edges {:?}", edges);
        if let Some(order) = fast {
            prop_assert!(is_consecutive_under(&edges, &order));
        }
    }

    /// Responsibility is monotone under witness protection: a
    /// counterfactual cause always has ρ = 1 and non-causes ρ = 0; all
    /// values lie in {0} ∪ {1/(k+1)}.
    #[test]
    fn rho_is_a_valid_responsibility(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 0..6),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 0..4),
    ) {
        let (db, q) = rs_database(&r_rows, &s_rows);
        for t in db.endogenous_tuples() {
            let resp = why_so_responsibility_exact(&db, &q, t).unwrap();
            prop_assert!((0.0..=1.0).contains(&resp.rho));
            match resp.min_contingency {
                Some(gamma) => {
                    let k = gamma.len() as f64;
                    prop_assert!((resp.rho - 1.0 / (1.0 + k)).abs() < 1e-12);
                }
                None => prop_assert_eq!(resp.rho, 0.0),
            }
        }
    }
}

/// Heap's algorithm (no external crates): call `f` on every permutation.
fn permutohedron_heap(items: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    fn heaps(k: usize, items: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if k == 1 {
            f(items);
            return;
        }
        for i in 0..k {
            heaps(k - 1, items, f);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let n = items.len();
    heaps(n, items, f);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.17's fast Why-No responsibility agrees with the literal
    /// Def. 2.1 dual (brute-force insertion search) on random instances.
    #[test]
    fn whyno_fast_matches_brute_force(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 0..5),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 0..4),
    ) {
        use causality_core::causes::smallest_whyno_contingency;
        use causality_core::resp::whyno::why_no_responsibility;
        let (db, q) = rs_database(&r_rows, &s_rows);
        for t in db.endogenous_tuples() {
            let fast = why_no_responsibility(&db, &q, t).unwrap();
            let brute = smallest_whyno_contingency(&db, &q, t).unwrap();
            match brute {
                Some(gamma) => {
                    prop_assert!(fast.is_cause(), "tuple {:?}", t);
                    prop_assert_eq!(
                        fast.min_contingency.unwrap().len(),
                        gamma.len(),
                        "tuple {:?}", t
                    );
                }
                None => prop_assert!(!fast.is_cause(), "tuple {:?}", t),
            }
        }
    }

    /// Why-So and Why-No are duals: a tuple that is a Why-So cause in the
    /// full database is a Why-No cause of the same query when the rest of
    /// the endogenous tuples are treated as candidate insertions over an
    /// empty real database (both reduce to the same minimized lineage).
    #[test]
    fn cause_sets_share_lineage_support(
        r_rows in prop::collection::vec((0u8..3, 0u8..3), 1..5),
        s_rows in prop::collection::vec(0u8..3, 1..4),
    ) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        for &(x, y) in &r_rows {
            db.insert_endo(r, vec![Value::from(i64::from(x)), Value::from(i64::from(y))]);
        }
        for &y in &s_rows {
            db.insert_endo(s, vec![Value::from(i64::from(y))]);
        }
        let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap();
        let whyso = why_so_causes(&db, &q).unwrap();
        let whyno = why_no_causes(&db, &q).unwrap();
        // With everything endogenous, both are supported by the same
        // minimized lineage variables.
        prop_assert_eq!(whyso.actual, whyno.actual);
    }

    /// Fuzz loop over the query parser: arbitrary byte soup must never
    /// panic — it parses or it returns `Err`.
    #[test]
    fn parser_never_panics_on_random_input(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = ConjunctiveQuery::parse(&text);
    }

    /// Mutation fuzzing: corrupt one byte of a valid query — still no
    /// panic, and the common malformations are rejected as errors.
    #[test]
    fn parser_never_panics_on_mutated_queries(
        pick in 0usize..4,
        pos in 0usize..64,
        replacement in any::<u8>(),
    ) {
        let seeds = [
            "q(x) :- R(x, y), S(y)",
            "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
            "g :- R(x, 'lit'), S(3, x)",
            "p(x, y) :- A(x), B(y), C(x, y, 'z')",
        ];
        let mut text = seeds[pick % seeds.len()].as_bytes().to_vec();
        let idx = pos % text.len();
        text[idx] = replacement;
        let text = String::from_utf8_lossy(&text);
        let _ = ConjunctiveQuery::parse(&text);
    }

    /// The malformations the parser now rejects up front: empty bodies,
    /// duplicate head variables, unbound head variables.
    #[test]
    fn parser_rejects_malformed_heads(
        var in 0usize..3,
    ) {
        let names = ["x", "y", "z"];
        let head = names[var];
        // Empty body.
        prop_assert!(ConjunctiveQuery::parse(&format!("q({head}) :- ")).is_err());
        // Duplicate head variable.
        prop_assert!(
            ConjunctiveQuery::parse(&format!("q({head}, {head}) :- R({head}, w)")).is_err()
        );
        // Unbound head variable (head var never occurs in the body).
        prop_assert!(ConjunctiveQuery::parse(&format!("q({head}) :- R(w)")).is_err());
        // The well-formed sibling parses.
        prop_assert!(ConjunctiveQuery::parse(&format!("q({head}) :- R({head}, w)")).is_ok());
    }
}
