//! Differential property tests for the anytime responsibility layer
//! (`causality_core::resp::approx`) against the exact kernels:
//!
//! * **bracketing** — on every instance small enough for the exact
//!   solver, the certified `RhoBounds` satisfy `lower ≤ ρ_exact ≤ upper`
//!   at *every* budget, including zero;
//! * **greedy guarantee** — the budget-free feasible contingency never
//!   exceeds `(ln n + 1) · |Γ_min|` (the classic set-cover bound);
//! * **monotone tightening** — along the refinement history the lower
//!   bound never decreases and the upper bound never increases;
//! * **collapse** — unlimited budget ends with `lower == upper` equal
//!   to the exact ρ, and the returned contingency is a true minimum;
//! * **known-ρ end to end** — the `datagen::hard_instances` families
//!   (triangle fan, self-join star) route through `Explainer::why_anytime`
//!   and bracket/collapse onto their by-construction responsibilities.
//!
//! Same discipline as `tests/lineage_bitset_differential.rs`: random
//! DNFs drawn small, seed oracle retained as ground truth.

use causality::prelude::*;
use causality_core::explain::ExplainMode;
use causality_core::resp::approx::harmonic_bound;
use causality_core::resp::exact;
use causality_lineage::{BitDnf, Conjunct, Dnf, LineageArena};
use proptest::prelude::*;

/// Build a DNF from raw `(rel, row)` conjunct descriptions.
fn dnf_of(raw: &[Vec<(u32, u32)>]) -> Dnf {
    Dnf::new(
        raw.iter()
            .map(|c| Conjunct::new(c.iter().map(|&(r, w)| TupleRef::new(r, w))))
            .collect(),
    )
}

/// Exact ρ for arena variable `v`: 0 when not a cause, else
/// `1/(1 + |Γ_min|)` via the exact branch-and-bound.
fn exact_rho(phin: &BitDnf, v: u32) -> f64 {
    match exact::min_contingency_bits(phin, v) {
        Some(gamma) => 1.0 / (1.0 + gamma.len() as f64),
        None => 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness at every budget: the bracket always contains the exact
    /// responsibility, and budget zero spends no search steps.
    #[test]
    fn bounds_bracket_exact_rho_at_every_budget(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..10), 0..4), 0..20),
    ) {
        let (arena, bits) = LineageArena::from_dnf(&dnf_of(&raw));
        let phin = bits.minimized();
        for v in 0..arena.len() as u32 {
            let rho = exact_rho(&phin, v);
            for budget in [
                ApproxBudget::zero(),
                ApproxBudget::steps(1),
                ApproxBudget::steps(7),
                ApproxBudget::steps(100),
                ApproxBudget::unlimited(),
            ] {
                let out = anytime_min_contingency(&phin, v, budget);
                prop_assert!(
                    out.bounds.contains(rho),
                    "v={v} budget={budget:?}: exact {rho} outside {:?}",
                    out.bounds
                );
                prop_assert!(out.steps_used <= budget.max_steps);
                if budget.max_steps == 0 {
                    prop_assert_eq!(out.steps_used, 0);
                }
            }
        }
    }

    /// The budget-free greedy contingency respects the ln(n)+1 set-cover
    /// guarantee against the true minimum (n = residual-set count, upper
    /// bounded here by the minimized conjunct count).
    #[test]
    fn greedy_respects_harmonic_guarantee(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..10), 0..4), 0..20),
    ) {
        let (arena, bits) = LineageArena::from_dnf(&dnf_of(&raw));
        let phin = bits.minimized();
        let n = phin.conjuncts().len();
        for v in 0..arena.len() as u32 {
            let Some(gamma) = exact::min_contingency_bits(&phin, v) else {
                continue;
            };
            let out = anytime_min_contingency(&phin, v, ApproxBudget::zero());
            let greedy = out.contingency.expect("cause ⇒ feasible greedy set");
            prop_assert!(
                greedy.len() as f64 <= harmonic_bound(n) * gamma.len() as f64 + 1e-9,
                "v={v}: greedy {} vs (ln {n}+1)·{}",
                greedy.len(),
                gamma.len()
            );
        }
    }

    /// Refinement only ever tightens: along the history the lower bound
    /// is non-decreasing and the upper bound non-increasing, under
    /// truncated budgets too.
    #[test]
    fn history_tightens_monotonically_under_any_budget(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..10), 0..4), 0..20),
        steps in 0u64..60,
    ) {
        let (arena, bits) = LineageArena::from_dnf(&dnf_of(&raw));
        let phin = bits.minimized();
        for v in 0..arena.len() as u32 {
            for budget in [ApproxBudget::steps(steps), ApproxBudget::unlimited()] {
                let out = anytime_min_contingency(&phin, v, budget);
                prop_assert!(!out.history.is_empty());
                for pair in out.history.windows(2) {
                    prop_assert!(
                        pair[1].lower >= pair[0].lower && pair[1].upper <= pair[0].upper,
                        "v={v}: history widens: {:?}",
                        out.history
                    );
                }
                prop_assert_eq!(out.history.last().copied(), Some(out.bounds));
            }
        }
    }

    /// Unlimited budget collapses the bracket onto the exact answer and
    /// returns a genuine minimum contingency (feasibility is implied by
    /// construction; minimality checked against the exact kernel).
    #[test]
    fn unlimited_budget_collapses_to_exact(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..10), 0..4), 0..20),
    ) {
        let (arena, bits) = LineageArena::from_dnf(&dnf_of(&raw));
        let phin = bits.minimized();
        for v in 0..arena.len() as u32 {
            let out = anytime_min_contingency(&phin, v, ApproxBudget::unlimited());
            prop_assert!(out.is_exact(), "v={v}: {:?}", out.bounds);
            let rho = exact_rho(&phin, v);
            prop_assert!(
                (out.bounds.lower - rho).abs() < 1e-12,
                "v={v}: collapsed to {} but exact is {rho}",
                out.bounds.lower
            );
            if let Some(gamma) = exact::min_contingency_bits(&phin, v) {
                let mine = out.contingency.expect("cause ⇒ contingency");
                prop_assert_eq!(mine.len(), gamma.len(), "v={v}");
            } else {
                prop_assert!(out.contingency.is_none(), "v={v}");
            }
        }
    }
}

/// The datagen known-ρ families, end to end through `why_anytime`: the
/// probe's bracket always contains the by-construction ρ, collapses to
/// it at unlimited budget, and the shared tuple stays counterfactual.
#[test]
fn known_rho_families_bracket_and_collapse_end_to_end() {
    for inst in [
        causality::datagen::hard_instances::triangle_fan(5),
        causality::datagen::hard_instances::selfjoin_star(6),
    ] {
        let explainer = Explainer::new(&inst.db, &inst.query);
        let exact_expl = explainer.why(&[]).unwrap();
        assert_eq!(exact_expl.mode, ExplainMode::Exact);

        for budget in [ApproxBudget::zero(), ApproxBudget::steps(5)] {
            let (expl, _) = explainer.why_anytime(&[], budget).unwrap();
            assert!(matches!(expl.mode, ExplainMode::Approximate { .. }));
            let probe = expl
                .causes
                .iter()
                .find(|c| c.tuple == inst.probe)
                .expect("probe is a cause");
            let bounds = probe.bounds.expect("approximate causes carry bounds");
            assert!(
                bounds.contains(inst.rho),
                "known ρ {} outside {:?} at {budget:?}",
                inst.rho,
                bounds
            );
        }

        let (full, _) = explainer
            .why_anytime(&[], ApproxBudget::unlimited())
            .unwrap();
        let probe = full.causes.iter().find(|c| c.tuple == inst.probe).unwrap();
        let bounds = probe.bounds.unwrap();
        assert!(bounds.is_exact(), "{bounds:?}");
        assert!((probe.rho - inst.rho).abs() < 1e-12);
        let shared = full
            .causes
            .iter()
            .find(|c| c.tuple == inst.counterfactual)
            .expect("shared tuple is a cause");
        assert!(shared.counterfactual && shared.rho == 1.0);
    }
}

/// Exact-path answers carry no bounds and keep `ExplainMode::Exact` —
/// the approximate machinery must be invisible unless asked for.
#[test]
fn exact_paths_carry_no_bounds() {
    let inst = causality::datagen::hard_instances::triangle_fan(3);
    let expl = Explainer::new(&inst.db, &inst.query).why(&[]).unwrap();
    assert_eq!(expl.mode, ExplainMode::Exact);
    assert!(expl.causes.iter().all(|c| c.bounds.is_none()));
}
