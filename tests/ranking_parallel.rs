//! Differential property tests for responsibility ranking:
//!
//! * `resp::exact` (branch-and-bound over the lineage) and `resp::flow`
//!   (Algorithm 1 via max-flow) must agree on ρ for every cause of a
//!   random weakly-linear, self-join-free instance — the two sides of
//!   the dichotomy meet on the PTIME cases;
//! * the parallel ranking executor must return a **bit-identical**
//!   order to the sequential path for every `parallelism ∈ {1, 2, 8}`,
//!   with and without top-k truncation (pruning included).

use causality::prelude::*;
use causality_core::ranking::{rank_why_so_cached, rank_why_so_parallel, RankConfig};
use causality_core::resp;
use proptest::prelude::*;

/// A random instance for the linear chain q(x) :- R(x,y), S(y).
/// Relations are *uniformly* endogenous or exogenous (Algorithm 1's
/// relation-level natures); R stays endogenous so causes exist.
fn chain_database(
    r_rows: &[(u8, u8)],
    s_rows: &[u8],
    s_endo: bool,
) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for &(x, y) in r_rows {
        db.insert_endo(
            r,
            vec![Value::from(i64::from(x)), Value::from(i64::from(y))],
        );
    }
    for &y in s_rows {
        db.insert(s, vec![Value::from(i64::from(y))], s_endo);
    }
    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
    (db, q)
}

/// A random 3-atom weakly-linear chain q :- R(x,y), S(y,z), T(z).
fn chain3_database(
    r_rows: &[(u8, u8)],
    s_rows: &[(u8, u8)],
    t_rows: &[u8],
) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z"]));
    for &(x, y) in r_rows {
        db.insert_endo(
            r,
            vec![Value::from(i64::from(x)), Value::from(i64::from(y))],
        );
    }
    for &(y, z) in s_rows {
        db.insert_endo(
            s,
            vec![Value::from(i64::from(y)), Value::from(i64::from(z))],
        );
    }
    for &z in t_rows {
        db.insert_endo(t, vec![Value::from(i64::from(z))]);
    }
    let q = ConjunctiveQuery::parse("q :- R(x, y), S(y, z), T(z)").unwrap();
    (db, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact and flow agree on ρ (and counterfactual-ness) for every
    /// cause of every answer of a random weakly-linear instance.
    #[test]
    fn exact_and_flow_agree_on_weakly_linear_instances(
        r_rows in prop::collection::vec((0u8..4, 0u8..4), 1..8),
        s_rows in prop::collection::vec(0u8..4, 1..5),
        s_endo in any::<bool>(),
    ) {
        let (db, q) = chain_database(&r_rows, &s_rows, s_endo);
        for answer in evaluate(&db, &q).unwrap().answers {
            let grounded = q.ground(answer.values());
            for t in why_so_causes(&db, &grounded).unwrap().actual {
                let exact = resp::exact::why_so_responsibility_exact(&db, &grounded, t).unwrap();
                let flow = resp::flow::why_so_responsibility_flow(&db, &grounded, t).unwrap();
                prop_assert!(
                    (exact.rho - flow.rho).abs() < 1e-12,
                    "exact ρ = {} vs flow ρ = {} for {t:?}", exact.rho, flow.rho
                );
                prop_assert_eq!(exact.is_counterfactual(), flow.is_counterfactual());
                // Both witness the same minimum contingency *size*.
                prop_assert_eq!(
                    exact.min_contingency.as_ref().map(Vec::len),
                    flow.min_contingency.as_ref().map(Vec::len)
                );
            }
        }
    }

    /// Parallel ranking is bit-identical to sequential for every
    /// parallelism level, full and top-k, on 2-atom chains.
    #[test]
    fn parallel_ranking_matches_sequential(
        r_rows in prop::collection::vec((0u8..4, 0u8..4), 1..8),
        s_rows in prop::collection::vec(0u8..4, 1..5),
        s_endo in any::<bool>(),
        k in 1usize..6,
    ) {
        let (db, q) = chain_database(&r_rows, &s_rows, s_endo);
        let cache = SharedIndexCache::new();
        for answer in evaluate(&db, &q).unwrap().answers {
            let grounded = q.ground(answer.values());
            let sequential =
                rank_why_so_cached(&db, &grounded, Method::Auto, Some(&cache)).unwrap();
            for parallelism in [1usize, 2, 8] {
                let full = rank_why_so_parallel(
                    &db,
                    &grounded,
                    &RankConfig::with_parallelism(parallelism),
                    Some(&cache),
                )
                .unwrap();
                assert_eq!(
                    full.causes, sequential,
                    "full ranking at parallelism {parallelism}"
                );
                prop_assert_eq!(full.stats.pruned, 0);

                let topk = rank_why_so_parallel(
                    &db,
                    &grounded,
                    &RankConfig::with_parallelism(parallelism).top_k(k),
                    Some(&cache),
                )
                .unwrap();
                assert_eq!(
                    topk.causes,
                    sequential[..k.min(sequential.len())],
                    "top-{k} at parallelism {parallelism}"
                );
                prop_assert_eq!(
                    topk.stats.computed + topk.stats.pruned,
                    topk.stats.candidates,
                    "every candidate is either solved or provably out"
                );
            }
        }
    }

    /// Same bit-identity on 3-atom chains (deeper flow networks, larger
    /// contingencies — and the Boolean query exercises ranking without
    /// grounding).
    #[test]
    fn parallel_ranking_matches_sequential_on_3_chains(
        r_rows in prop::collection::vec((0u8..3, 0u8..3), 1..6),
        s_rows in prop::collection::vec((0u8..3, 0u8..3), 1..6),
        t_rows in prop::collection::vec(0u8..3, 1..4),
        k in 1usize..4,
    ) {
        let (db, q) = chain3_database(&r_rows, &s_rows, &t_rows);
        let sequential = rank_why_so_cached(&db, &q, Method::Auto, None).unwrap();
        for parallelism in [1usize, 2, 8] {
            let full =
                rank_why_so_parallel(&db, &q, &RankConfig::with_parallelism(parallelism), None)
                    .unwrap();
            assert_eq!(full.causes, sequential, "3-chain full");
            let topk = rank_why_so_parallel(
                &db,
                &q,
                &RankConfig::with_parallelism(parallelism).top_k(k),
                None,
            )
            .unwrap();
            assert_eq!(
                topk.causes,
                sequential[..k.min(sequential.len())],
                "3-chain top-k"
            );
        }
    }
}
