//! The hardness router under deadline pressure, end to end through the
//! serving tier: NP-hard Why-So requests carrying a deadline must come
//! back `Ok` with `ExplainMode::Approximate` and certified bounds —
//! never `DeadlineExceeded`, never a stalled worker — while PTIME
//! traffic stays bit-identical to the deadline-free exact path. Runs
//! under a hard timeout (and in CI's timeout-guarded matrix), so a
//! routing bug that stalls a worker fails fast instead of hanging.

use causality::datagen::hard_instances::{dense_triangles, triangle_fan};
use causality::prelude::*;
use causality_core::explain::ExplainMode;
use std::sync::mpsc;
use std::time::Duration;

const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_timeout(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("deadline scenario exceeded {HARD_TIMEOUT:?} — worker stall?")
        }
    }
}

/// Every cause of an approximate explanation must carry a sane bracket.
fn assert_sound_brackets(explanation: &Explanation) {
    assert!(matches!(explanation.mode, ExplainMode::Approximate { .. }));
    if let ExplainMode::Approximate { bounds, .. } = explanation.mode {
        assert!(bounds.lower <= bounds.upper, "{bounds:?}");
        assert!(bounds.upper <= 1.0 + 1e-12, "{bounds:?}");
    }
    for cause in &explanation.causes {
        let bounds = cause.bounds.expect("approximate causes carry bounds");
        assert!(
            0.0 < bounds.lower && bounds.lower <= bounds.upper && bounds.upper <= 1.0 + 1e-12,
            "{:?} for {}",
            bounds,
            cause.relation
        );
        assert_eq!(cause.rho, bounds.lower, "ρ reports the certified lower");
    }
}

/// Tentpole: a dense NP-hard instance under a tight deadline is
/// answered approximately within budget — `Ok` every time, zero
/// `DeadlineExceeded`, and the route is counted.
#[test]
fn hard_instance_under_tight_deadline_is_answered_approximately() {
    with_timeout(|| {
        let inst = dense_triangles(6, 150, 42);
        let svc = CausalityService::with_config(
            inst.db.clone(),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        for _ in 0..4 {
            let req = ExplainRequest::why_so(inst.query.clone(), vec![]);
            let response = svc
                .submit_with_deadline(req, Duration::from_millis(2))
                .unwrap()
                .wait()
                .unwrap();
            let explanation = response
                .result
                .expect("hard + deadline ⇒ anytime, not error");
            assert_sound_brackets(&explanation);
            assert!(!explanation.causes.is_empty());
        }
        let stats = svc.stats();
        assert_eq!(stats.deadline_misses, 0, "the anytime tier absorbs them");
        assert_eq!(stats.approx_requests, 4);
        svc.shutdown();
    });
}

/// Budget zero is still sound: a deadline that expires while the job is
/// queued behind a stalled worker degrades to the greedy bracket — not
/// to `DeadlineExceeded` — and the known-ρ probe stays inside it.
#[test]
fn expired_deadline_still_yields_sound_greedy_bounds() {
    with_timeout(|| {
        let k = 5;
        let inst = triangle_fan(k);
        let svc = CausalityService::with_config(
            inst.db.clone(),
            ServiceConfig {
                workers: 1,
                batch_max: 1,
                ..ServiceConfig::default()
            },
        );
        // Stall the worker on a deadline-free blocker so the hard job's
        // budget expires before it is even dequeued.
        let blocker_query = ConjunctiveQuery::parse("blocker :- R(x, y)").unwrap();
        let blocker_req = ExplainRequest::why_so(blocker_query, vec![]);
        svc.inject_delay({
            let marker = blocker_req.clone();
            move |req| (*req == marker).then_some(Duration::from_millis(120))
        });

        let blocker = svc.submit(blocker_req).unwrap();
        let doomed = svc
            .submit_with_deadline(
                ExplainRequest::why_so(inst.query.clone(), vec![]),
                Duration::from_millis(5),
            )
            .unwrap();

        let explanation = doomed
            .wait()
            .unwrap()
            .result
            .expect("expired hard job is rescued, not errored");
        assert_sound_brackets(&explanation);
        let probe = explanation
            .causes
            .iter()
            .find(|c| c.tuple == inst.probe)
            .expect("probe is a cause");
        let bounds = probe.bounds.unwrap();
        assert!(
            bounds.contains(inst.rho),
            "known ρ {} outside {bounds:?}",
            inst.rho
        );
        blocker.wait().unwrap().result.unwrap();

        let stats = svc.stats();
        assert_eq!(stats.deadline_misses, 0, "rescued, not missed");
        assert_eq!(stats.approx_requests, 1);
        svc.shutdown();
    });
}

/// PTIME traffic is untouched by the router: with or without a
/// deadline, the answer is the exact explanation, bit for bit.
#[test]
fn ptime_route_with_deadline_is_bit_identical_to_exact() {
    with_timeout(|| {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        for (x, y) in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3")] {
            db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
        }
        for y in ["a1", "a3"] {
            db.insert_endo(s, vec![Value::str(y)]);
        }
        let svc = CausalityService::with_config(
            db,
            ServiceConfig {
                workers: 1,
                // No caching between the two submissions: both compute.
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let query = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let req = ExplainRequest::why_so(query, vec![Value::str("a2")]);

        let exact = svc.explain(req.clone()).unwrap().expect_explanation();
        let deadlined = svc
            .submit_with_deadline(req, Duration::from_secs(5))
            .unwrap()
            .wait()
            .unwrap()
            .expect_explanation();

        assert_eq!(exact.mode, ExplainMode::Exact);
        assert_eq!(exact, deadlined, "PTIME route ignores the deadline");
        assert!(deadlined.causes.iter().all(|c| c.bounds.is_none()));
        let stats = svc.stats();
        assert_eq!(
            stats.approx_requests, 0,
            "no PTIME request took the anytime path"
        );
        assert_eq!(stats.deadline_misses, 0);
        svc.shutdown();
    });
}

/// The anytime route is observable: the trace grows an `approx_refine`
/// stage, and the approx counters/export surface the route.
#[test]
fn approx_route_is_visible_in_telemetry() {
    with_timeout(|| {
        let inst = triangle_fan(4);
        let svc = CausalityService::with_config(
            inst.db.clone(),
            ServiceConfig {
                workers: 1,
                telemetry: TelemetryConfig::default(), // sample everything
                ..ServiceConfig::default()
            },
        );
        let explanation = svc
            .submit_with_deadline(
                ExplainRequest::why_so(inst.query.clone(), vec![]),
                Duration::from_secs(5),
            )
            .unwrap()
            .wait()
            .unwrap()
            .expect_explanation();
        assert!(matches!(explanation.mode, ExplainMode::Approximate { .. }));

        let traces = svc.recent_traces();
        assert_eq!(traces.len(), 1);
        let chain: Vec<&str> = traces[0].stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            chain,
            vec![
                "admission",
                "dispatch",
                "shard_queue",
                "worker_dequeue",
                "snapshot_pin",
                "lineage_intern",
                "kernel_solve",
                "approx_refine",
                "respond",
            ],
            "the anytime route records its refinement stage in order"
        );
        assert_eq!(svc.stats().approx_requests, 1);
        let prom = svc.export_metrics();
        assert!(
            prom.contains("approx_requests_total"),
            "approx counters exported:\n{prom}"
        );
        svc.shutdown();
    });
}
