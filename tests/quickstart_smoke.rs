//! Smoke test mirroring `examples/quickstart.rs` through the
//! `causality::prelude` facade: the paper's Example 2.2 instance must
//! evaluate, explain every answer, and expose its lineage, with the
//! responsibilities the paper derives.

use causality::prelude::*;

#[test]
fn quickstart_flow_through_prelude_facade() {
    // The database of Example 2.2: R(x, y) and S(y), all endogenous.
    let db = causality::engine::database::example_2_2();

    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").expect("query parses");
    let result = evaluate(&db, &q).expect("evaluation succeeds");
    assert_eq!(
        result.answers.len(),
        3,
        "Example 2.2 has exactly three answers"
    );

    // Every answer gets an explanation with at least one cause, all
    // responsibilities in (0, 1].
    let explainer = Explainer::new(&db, &q);
    for answer in &result.answers {
        let explanation = explainer
            .why(answer.values())
            .expect("explanation succeeds");
        assert!(
            !explanation.causes.is_empty(),
            "answer {answer} must have causes"
        );
        for cause in &explanation.causes {
            assert!(
                cause.rho > 0.0 && cause.rho <= 1.0,
                "responsibility out of range for {answer}: {}",
                cause.rho
            );
            // A counterfactual cause is exactly one with an empty
            // contingency (ρ = 1).
            assert_eq!(cause.counterfactual, cause.contingency.is_empty());
            assert_eq!(cause.counterfactual, cause.rho == 1.0);
        }
    }

    // The lineage view of the same facts (Sect. 3): a4 has derivations.
    let grounded = q.ground(&[Value::from("a4")]);
    let phi = lineage(&db, &grounded).expect("lineage computes");
    assert!(
        !phi.conjuncts().is_empty(),
        "a4's lineage must have at least one derivation"
    );
}

#[test]
fn quickstart_doc_example_from_scratch() {
    // The crate-root doctest scenario, kept as a plain test so it is
    // exercised by `cargo test` even when doctests are filtered out.
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    db.insert_endo(r, vec![Value::from("a2"), Value::from("a1")]);
    db.insert_endo(s, vec![Value::from("a1")]);

    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
    let explanation = Explainer::new(&db, &q).why(&[Value::from("a2")]).unwrap();
    assert_eq!(explanation.causes.len(), 2);
    assert!(explanation.causes.iter().all(|c| c.rho == 1.0));
}
