//! Property tests for the explanation service: end-to-end responsibility
//! invariants on random instances, served through the full worker-pool /
//! snapshot / cache stack.
//!
//! * ρ ∈ (0, 1] for every served cause;
//! * ρ = 1 **iff** the cause is counterfactual (empty minimum
//!   contingency), cross-checked against Theorem 3.2's counterfactual
//!   set computed by the library directly;
//! * cache-hit answers are bit-identical to the cold answers.

use causality::prelude::*;
use causality_core::causes::{why_no_causes, why_so_causes};
use proptest::prelude::*;

/// A small random database for q(x) :- R(x,y), S(y) with mixed natures.
fn rs_database(r_rows: &[(u8, u8, bool)], s_rows: &[(u8, bool)]) -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for &(x, y, endo) in r_rows {
        db.insert(
            r,
            vec![Value::from(i64::from(x)), Value::from(i64::from(y))],
            endo,
        );
    }
    for &(y, endo) in s_rows {
        db.insert(s, vec![Value::from(i64::from(y))], endo);
    }
    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
    (db, q)
}

fn small_service(db: Database) -> CausalityService {
    CausalityService::with_config(
        db,
        ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            batch_max: 4,
            cache_capacity: 64,
            cached_versions: 2,
            rank_parallelism: 1,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Why-So through the service: ρ ∈ (0,1], ρ = 1 iff counterfactual,
    /// and a cache hit is bit-identical to the cold answer.
    #[test]
    fn served_why_so_responsibility_invariants(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 0..6),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 0..4),
    ) {
        let (db, q) = rs_database(&r_rows, &s_rows);
        let answers = evaluate(&db, &q).unwrap().answers;
        let svc = small_service(db.clone());
        for answer in answers {
            let answer: Vec<Value> = answer.values().to_vec();
            let request = ExplainRequest::why_so(q.clone(), answer.clone());
            let cold = svc.explain(request.clone()).unwrap();
            prop_assert!(!cold.cache_hit);
            let cold = cold.result.expect("why-so computes");

            // Theorem 3.2 reference: the counterfactual set of q[ā/x̄].
            let reference = why_so_causes(&db, &q.ground(&answer)).unwrap();
            prop_assert_eq!(cold.causes.len(), reference.actual.len());
            for cause in &cold.causes {
                prop_assert!(cause.rho > 0.0 && cause.rho <= 1.0,
                    "ρ = {} out of (0,1]", cause.rho);
                let is_cf = reference.counterfactual.contains(&cause.tuple);
                prop_assert_eq!(cause.rho == 1.0, is_cf,
                    "ρ = 1 iff the cause is counterfactual (ρ = {})", cause.rho);
                prop_assert_eq!(cause.counterfactual, is_cf);
                prop_assert_eq!(cause.contingency.is_empty(), is_cf,
                    "counterfactual iff empty contingency");
            }

            let warm = svc.explain(request).unwrap();
            prop_assert!(warm.cache_hit);
            prop_assert_eq!(warm.result.expect("cache hit"), cold,
                "cache-hit answer bit-identical to cold");
        }
    }

    /// Why-No through the service: same invariants on non-answers, with
    /// exogenous rows as the real database and endogenous rows as the
    /// candidate insertions (Theorem 4.17 is PTIME, so every case runs).
    #[test]
    fn served_why_no_responsibility_invariants(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 1..6),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 1..4),
        probe in 0u8..3,
    ) {
        let (db, q) = rs_database(&r_rows, &s_rows);
        let answer = vec![Value::from(i64::from(probe))];
        let svc = small_service(db.clone());
        let request = ExplainRequest::why_no(q.clone(), answer.clone());
        let cold = svc.explain(request.clone()).unwrap();
        let cold = cold.result.expect("why-no computes");

        let reference = why_no_causes(&db, &q.ground(&answer)).unwrap();
        prop_assert_eq!(cold.causes.len(), reference.actual.len());
        for cause in &cold.causes {
            prop_assert!(cause.rho > 0.0 && cause.rho <= 1.0);
            let is_cf = reference.counterfactual.contains(&cause.tuple);
            prop_assert_eq!(cause.rho == 1.0, is_cf);
            prop_assert_eq!(cause.counterfactual, is_cf);
        }

        let warm = svc.explain(request).unwrap();
        prop_assert!(warm.cache_hit);
        prop_assert_eq!(warm.result.expect("cache hit"), cold);
    }

    /// Publishing a snapshot invalidates by key: the service recomputes
    /// and the fresh answer matches a fresh library computation.
    #[test]
    fn served_answers_track_published_snapshots(
        r_rows in prop::collection::vec((0u8..3, 0u8..3, any::<bool>()), 1..5),
        s_rows in prop::collection::vec((0u8..3, any::<bool>()), 1..4),
        extra in (0u8..3, 0u8..3),
    ) {
        let (db, q) = rs_database(&r_rows, &s_rows);
        let answers = evaluate(&db, &q).unwrap().answers;
        let svc = small_service(db);
        if let Some(answer) = answers.first() {
            let answer: Vec<Value> = answer.values().to_vec();
            let request = ExplainRequest::why_so(q.clone(), answer.clone());
            svc.explain(request.clone()).unwrap();
            svc.update(|db| {
                let r = db.relation_id("R").unwrap();
                let s = db.relation_id("S").unwrap();
                db.insert_endo(r, vec![
                    Value::from(i64::from(extra.0)),
                    Value::from(i64::from(extra.1)),
                ]);
                db.insert_endo(s, vec![Value::from(i64::from(extra.1))]);
            });
            let fresh = svc.explain(request).unwrap();
            prop_assert!(!fresh.cache_hit, "new version misses the cache");
            prop_assert_eq!(fresh.snapshot_version, 2);
            let fresh = fresh.result.expect("computes on new snapshot");
            let snap = svc.snapshot();
            let reference = Explainer::new(snap.database(), &q).why(&answer).unwrap();
            prop_assert_eq!(fresh, reference);
        }
    }
}
