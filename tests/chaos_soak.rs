//! Seeded chaos smoke (PR 9): a compact version of the load harness's
//! chaos soak, sized for the standard test job. A deterministic
//! [`FaultPlan`] — panic bursts, worker stalls, cache poisoning,
//! submission bursts, clock skew — is replayed against a two-shard tier
//! driven entirely through `explain_with_retry`, and the run asserts
//! the self-healing contract: zero silent drops (every submission comes
//! back as an answer or a retryable reject with a retry-after hint),
//! the wedged shards are quarantined and restarted by the supervisor,
//! and the tier converges back to `Healthy` once the faults stop.

use causality::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_timeout(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("chaos soak exceeded {HARD_TIMEOUT:?} — self-healing deadlock?")
        }
    }
}

fn seed_database() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3")] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3", "a4"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
}

/// Silence only the planned chaos panics so the soak output stays
/// readable; anything else still prints through the original hook.
fn install_quiet_panic_hook() {
    let default_hook = std::panic::take_hook();
    let delegate = Arc::new(default_hook);
    std::panic::set_hook(Box::new(move |info| {
        let planned = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|msg| msg.contains("chaos hook") || msg.contains("fault plan"));
        if !planned {
            delegate(info);
        }
    }));
}

const SEED: u64 = 0xC4A0_5011;

#[test]
fn seeded_chaos_soak_heals_with_zero_silent_drops() {
    with_timeout(|| {
        const SHARDS: usize = 2;
        const OPS: u64 = 80;
        const HORIZON: u64 = 30;
        let tick = Duration::from_millis(3);
        let open_for = Duration::from_millis(30);
        let clock = Arc::new(ManualClock::new());
        let tier = ShardedService::with_clock(
            TierConfig {
                shards: SHARDS,
                admission_limit: 32,
                default_deadline: None,
                retry: RetryPolicy {
                    max_attempts: 2,
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(40),
                    jitter_seed: SEED,
                    hedge_after: Some(Duration::from_millis(15)),
                },
                breaker: BreakerConfig {
                    failure_threshold: 4,
                    open_for,
                    half_open_probes: 1,
                },
                supervisor: SupervisorConfig {
                    tick,
                    panic_quarantine: 4,
                    stall_ticks: 8,
                    miss_rate: 0.9,
                    miss_window_min: 8,
                    probe_ticks: 2,
                },
                shard: ServiceConfig {
                    workers: 1,
                    batch_max: 4,
                    queue_capacity: 64,
                    ..ServiceConfig::default()
                },
                ..TierConfig::default()
            },
            clock.clone(),
        );

        // Two tenants on different shards for a deterministic 50/50
        // ordinal split.
        let first = tier.add_tenant("chaos-0", seed_database()).unwrap();
        let mut pair = [first, first];
        for i in 1..64 {
            let id = tier
                .add_tenant(&format!("chaos-{i}"), seed_database())
                .unwrap();
            if id.shard() != first.shard() {
                pair = [first, id];
                break;
            }
        }
        assert_ne!(pair[0].shard(), pair[1].shard(), "both shards covered");
        let by_shard = |s: usize| {
            if pair[0].shard() == s {
                pair[0]
            } else {
                pair[1]
            }
        };

        let plan = FaultPlan::generate(SEED, SHARDS, HORIZON);
        assert_eq!(
            plan.render(),
            FaultPlan::generate(SEED, SHARDS, HORIZON).render(),
            "the plan itself replays bit-identically"
        );
        tier.install_fault_plan(&plan);
        install_quiet_panic_hook();

        let mut events: Vec<_> = plan.harness_events().copied().collect();
        let mut burst_handles = Vec::new();
        let mut submitted = 0u64;
        let mut answered = 0u64;
        let mut rejected = 0u64;
        for i in 0..OPS {
            clock.advance(Duration::from_millis(1));
            let tenant = pair[(i % 2) as usize];
            // Invalidate the cache so each read is a fresh computation
            // and advances the shard's fault ordinal.
            tier.update(tenant, |db| {
                let s = db.relation_id("S").expect("seed schema");
                db.insert_endo(s, vec![Value::str(format!("chaos_w{i}"))]);
            })
            .unwrap();
            let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
            submitted += 1;
            let was_rejected = match tier.explain_with_retry(tenant, req) {
                Ok(resp) => match resp.result {
                    Ok(_) => {
                        answered += 1;
                        false
                    }
                    Err(e) => {
                        assert!(e.is_retryable(), "terminal in-band error in soak: {e}");
                        rejected += 1;
                        true
                    }
                },
                Err(e) => {
                    assert!(e.is_retryable(), "terminal submit error in soak: {e}");
                    if let Some(hint) = e.retry_after_hint() {
                        assert!(hint > Duration::ZERO, "reject hints are usable");
                    }
                    rejected += 1;
                    true
                }
            };
            if was_rejected {
                // Let the breaker window elapse on the injected clock
                // and give the supervisor a few wall-clock ticks to see
                // the panic streak while it is still live.
                clock.advance(open_for);
                std::thread::sleep(3 * tick);
            }
            let progressed: Vec<u64> = (0..SHARDS).map(|s| tier.shard_progress(s)).collect();
            events.retain(|e| {
                if progressed[e.shard] < e.at_ordinal {
                    return true;
                }
                match e.kind {
                    FaultKind::Burst(n) => {
                        let burst_req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
                        for _ in 0..n {
                            submitted += 1;
                            match tier.submit(by_shard(e.shard), burst_req.clone()) {
                                Ok(handle) => burst_handles.push(handle),
                                Err(err) => {
                                    assert!(
                                        err.is_retryable(),
                                        "burst overrun must reject retryably: {err}"
                                    );
                                    assert!(
                                        err.retry_after_hint().unwrap_or_default() > Duration::ZERO,
                                        "burst rejects carry a retry-after hint"
                                    );
                                    rejected += 1;
                                }
                            }
                        }
                    }
                    FaultKind::ClockSkew(d) => clock.rewind(d),
                    _ => unreachable!("harness_events yields only bursts and skews"),
                }
                false
            });
        }
        assert!(
            events.is_empty(),
            "every scheduled harness event fired before the soak ended: {events:?}"
        );
        for handle in burst_handles {
            let resp = handle
                .wait()
                .expect("restarted pools never lose a queued request");
            match resp.result {
                Ok(_) => answered += 1,
                Err(e) => {
                    assert!(e.is_retryable(), "terminal burst error in soak: {e}");
                    rejected += 1;
                }
            }
        }
        assert_eq!(
            answered + rejected,
            submitted,
            "zero silent drops: every submission is answered or visibly rejected"
        );

        // Convergence: with the plan cleared, both shards probe back to
        // Healthy.
        tier.clear_faults();
        let drain_start = Instant::now();
        while !(0..SHARDS).all(|s| tier.shard_health(s) == Some(HealthState::Healthy)) {
            assert!(
                drain_start.elapsed() < Duration::from_secs(10),
                "tier failed to return to Healthy after the faults stopped"
            );
            std::thread::sleep(tick);
        }

        let stats = tier.stats();
        let agg = stats.aggregate();
        assert_eq!(agg.queue_depth, 0, "soak fully drained");
        assert!(
            agg.panics_caught >= 5,
            "the plan's panic bursts really fired: {} panics",
            agg.panics_caught
        );
        assert!(
            agg.shard_quarantines >= 1,
            "a wedged shard was quarantined by the supervisor"
        );
        assert!(
            agg.shard_restarts >= 1,
            "the quarantined shard's worker pool was restarted"
        );
        assert!(stats.frontend.retries >= 1, "retry/backoff really engaged");

        // The healed tier serves normally again.
        let resp = tier
            .explain(
                pair[0],
                ExplainRequest::why_so(query(), vec![Value::str("a2")]),
            )
            .unwrap();
        resp.result.expect("healed tier serves exact answers");
        tier.shutdown();
    });
}
