//! Tracing overhead guard: the serving path with full sampling must stay
//! within a generous factor of the tracing-disabled path, and disabling
//! sampling must really disable the per-request work.
//!
//! The band is deliberately wide (debug builds, shared CI runners): this
//! test catches catastrophic regressions — a lock on the hot path, an
//! allocation per unsampled request — not single-digit-percent drift,
//! which the bench gate (`xtask bench-gate`, BENCH_*.json) tracks in
//! release mode across PRs.

use causality::prelude::*;
use causality_engine::database::example_2_2;
use std::time::{Duration, Instant};

const OPS: usize = 400;

fn run_requests(sample_rate: f64) -> (Duration, u64) {
    let svc = CausalityService::with_config(
        example_2_2(),
        ServiceConfig {
            workers: 2,
            telemetry: TelemetryConfig {
                sample_rate,
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
    let answers = ["a2", "a3", "a4"];
    // Warm the caches so the measured window is the serving overhead,
    // not the first-call index builds.
    for a in answers {
        svc.explain(ExplainRequest::why_so(q.clone(), vec![Value::str(a)]))
            .unwrap();
    }
    let started = Instant::now();
    for i in 0..OPS {
        let a = answers[i % answers.len()];
        let resp = svc
            .explain(ExplainRequest::why_so(q.clone(), vec![Value::str(a)]))
            .unwrap();
        assert!(resp.result.is_ok());
    }
    let elapsed = started.elapsed();
    let sampled = svc.recent_traces().len().max(svc.slow_log_records().len()) as u64;
    let prom = svc.export_metrics();
    let traced_total: u64 = prom
        .lines()
        .find(|l| l.starts_with("causality_traces_sampled_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    svc.shutdown();
    let _ = sampled;
    (elapsed, traced_total)
}

#[test]
fn tracing_disabled_does_no_per_request_work() {
    let (_, sampled) = run_requests(0.0);
    assert_eq!(sampled, 0, "rate 0 must never allocate a trace");
}

#[test]
fn full_tracing_stays_within_the_overhead_band() {
    let (off, sampled_off) = run_requests(0.0);
    let (on, sampled_on) = run_requests(1.0);
    assert_eq!(sampled_off, 0);
    assert_eq!(
        sampled_on as usize,
        OPS + 3,
        "warmup + measured all sampled"
    );
    // Generous band: tracing-on may cost up to 2.5x tracing-off plus an
    // absolute 150ms slack to absorb scheduler noise on small totals.
    let ceiling = off
        .checked_mul(5)
        .map(|x| x / 2 + Duration::from_millis(150))
        .unwrap_or(Duration::MAX);
    assert!(
        on <= ceiling,
        "tracing overhead out of band: off={off:?} on={on:?} ceiling={ceiling:?}"
    );
}
