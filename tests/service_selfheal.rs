//! Self-healing serving tier (PR 9), end to end through the public
//! APIs: the supervisor quarantines and restarts a wedged shard without
//! losing a single queued request, brownout mode serves certified
//! zero-budget answers instead of shedding NP-hard traffic, per-tenant
//! circuit breakers trip and recover on an injected clock, and the
//! seeded fault-plan / backoff machinery replays bit-identically. All
//! scenarios run under hard timeouts so a supervision deadlock fails
//! fast instead of hanging CI.

use causality::prelude::*;
use causality::service::retry::{backoff, JitterRng};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_timeout(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("self-heal scenario exceeded {HARD_TIMEOUT:?} — supervision deadlock?")
        }
    }
}

fn seed_database() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3")] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3", "a4"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
}

/// A 3-tuple triangle instance whose Why-So is NP-hard (non-weakly
/// linear per Cor. 4.14) — the request shape the brownout path and the
/// hardness router act on.
fn triangle_tenant() -> (Database, ConjunctiveQuery) {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));
    db.insert_endo(r, vec![Value::int(1), Value::int(2)]);
    db.insert_endo(s, vec![Value::int(2), Value::int(3)]);
    db.insert_endo(t, vec![Value::int(3), Value::int(1)]);
    let q = ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").unwrap();
    (db, q)
}

/// An aggressive supervisor for tests: quarantine decisions inside a
/// few milliseconds instead of the conservative production default.
fn aggressive_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        tick: Duration::from_millis(2),
        panic_quarantine: 3,
        stall_ticks: 3,
        miss_rate: 0.9,
        miss_window_min: 8,
        probe_ticks: 2,
    }
}

/// Tentpole: a shard wedged behind a stalled worker is quarantined and
/// its pool restarted on the *same* queue — the stuck request and the
/// queued one both still get their answers (zero loss), and the shard
/// probes back to `Healthy`.
#[test]
fn supervisor_restarts_a_wedged_shard_without_losing_requests() {
    with_timeout(|| {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            supervisor: aggressive_supervisor(),
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let tenant = tier.add_tenant("t", seed_database()).unwrap();
        assert_eq!(tier.shard_health(0), Some(HealthState::Healthy));

        // The blocker wedges the only worker for 100ms; the victim sits
        // in the queue with zero completions — the stall signature.
        tier.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(100))
        });
        let blocker = tier
            .submit(
                tenant,
                ExplainRequest::why_so(query(), vec![Value::str("a2")]),
            )
            .unwrap();
        let victim = tier
            .submit(
                tenant,
                ExplainRequest::why_so(query(), vec![Value::str("a3")]),
            )
            .unwrap();

        // Zero loss: the restarted pool drains the victim off the same
        // channel, and the wedged worker still delivers its answer.
        victim.wait().unwrap().result.unwrap();
        blocker.wait().unwrap().result.unwrap();

        let stats = tier.stats().aggregate();
        assert!(
            stats.shard_quarantines >= 1,
            "the stall was classified and quarantined: {stats:?}"
        );
        assert!(
            stats.shard_restarts >= 1,
            "the worker pool was restarted: {stats:?}"
        );
        assert_eq!(stats.queue_depth, 0, "nothing left behind");

        // Re-admission: the shard probes back to Healthy and serves.
        let deadline = Instant::now() + Duration::from_secs(5);
        while tier.shard_health(0) != Some(HealthState::Healthy) {
            assert!(Instant::now() < deadline, "shard never re-admitted");
            std::thread::sleep(Duration::from_millis(2));
        }
        tier.clear_faults();
        tier.explain(
            tenant,
            ExplainRequest::why_so(query(), vec![Value::str("a4")]),
        )
        .unwrap()
        .result
        .unwrap();
        tier.shutdown();
    });
}

/// Brownout: with the tier's queues past the high-water mark, a
/// routable NP-hard request is served *inline* with the certified
/// zero-budget greedy bracket — never `Overloaded`, never queued — and
/// the mode recovers hysteretically once the depth falls to the
/// low-water mark.
#[test]
fn brownout_serves_certified_answers_inline_and_recovers() {
    with_timeout(|| {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            admission_limit: 64,
            brownout_high_water: 2,
            brownout_low_water: 0,
            supervisor: SupervisorConfig::disabled(),
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let easy = tier.add_tenant("easy", seed_database()).unwrap();
        let (tri_db, tri_query) = triangle_tenant();
        let hard = tier.add_tenant("triangle", tri_db).unwrap();

        // Pile three stalled blockers onto the single worker so the
        // tier-wide queue depth crosses the high-water mark of 2.
        tier.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(40))
        });
        let easy_req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let blockers: Vec<_> = (0..3)
            .map(|_| tier.submit(easy, easy_req.clone()).unwrap())
            .collect();

        // Browned out: the NP-hard request is answered inline with the
        // certified zero-budget bracket instead of joining the queue.
        let resp = tier
            .explain(hard, ExplainRequest::why_so(tri_query.clone(), vec![]))
            .unwrap();
        let explanation = resp.result.expect("brownout degrades, never rejects");
        assert!(
            matches!(explanation.mode, ExplainMode::Approximate { .. }),
            "brownout answers carry the approximate mode: {:?}",
            explanation.mode
        );
        if let ExplainMode::Approximate { bounds, .. } = explanation.mode {
            assert!(bounds.lower <= bounds.upper && bounds.upper <= 1.0 + 1e-12);
        }
        assert!(!explanation.causes.is_empty());
        assert!(!resp.cache_hit);
        assert_eq!(tier.stats().frontend.brownout_served, 1);

        for blocker in blockers {
            blocker.wait().unwrap().result.unwrap();
        }
        tier.clear_faults();

        // Hysteresis: with the queues drained to the low-water mark the
        // next submit leaves brownout, the mode's duration is accounted,
        // and the same NP-hard request runs the normal exact path again.
        let recovered = tier
            .explain(hard, ExplainRequest::why_so(tri_query, vec![]))
            .unwrap();
        assert_eq!(
            recovered.result.unwrap().mode,
            ExplainMode::Exact,
            "deadline-free NP-hard traffic is exact once brownout lifts"
        );
        let fe = tier.stats().frontend;
        assert_eq!(
            fe.brownout_served, 1,
            "only the browned-out request degraded"
        );
        assert!(fe.brownout_us > 0, "the brownout window was accounted");
        tier.shutdown();
    });
}

/// Per-tenant circuit breaker through the public tier API on an
/// injected clock: repeated panics trip the tenant open (requests shed
/// with a retry-after hint before touching a queue), the open window
/// elapses on the `ManualClock`, and a half-open probe closes it again.
#[test]
fn circuit_breaker_trips_and_recovers_on_an_injected_clock() {
    with_timeout(|| {
        let clock = Arc::new(ManualClock::new());
        let open_for = Duration::from_millis(200);
        let tier = ShardedService::with_clock(
            TierConfig {
                shards: 1,
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    open_for,
                    half_open_probes: 1,
                },
                supervisor: SupervisorConfig::disabled(),
                shard: ServiceConfig {
                    workers: 1,
                    ..ServiceConfig::default()
                },
                ..TierConfig::default()
            },
            clock.clone(),
        );
        let tenant = tier.add_tenant("flaky", seed_database()).unwrap();
        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);

        // Three panicking requests in a row: threshold reached, open.
        tier.inject_fault(|_| true);
        for _ in 0..3 {
            let resp = tier.explain(tenant, req.clone()).unwrap();
            assert!(matches!(resp.result, Err(ServiceError::Panicked(_))));
        }
        match tier.explain(tenant, req.clone()) {
            Err(ServiceError::CircuitOpen { retry_after }) => {
                assert!(retry_after > Duration::ZERO && retry_after <= open_for);
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        let fe = tier.stats().frontend;
        assert_eq!(fe.breaker_trips, 1);
        assert!(fe.breaker_rejects >= 1);

        // Recovery: the open window elapses on the injected clock, the
        // half-open probe succeeds, and the tenant serves again.
        tier.clear_faults();
        clock.advance(open_for + Duration::from_millis(1));
        tier.explain(tenant, req.clone())
            .unwrap()
            .result
            .expect("half-open probe closes the breaker");
        tier.explain(tenant, req)
            .unwrap()
            .result
            .expect("closed again — traffic flows");
        assert_eq!(tier.stats().frontend.breaker_trips, 1, "no re-trip");
        tier.shutdown();
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: a seeded fault plan replays bit-identically — same
    /// seed, same shard count, same horizon ⇒ the same events in the
    /// same order, witnessed by the stable rendering — and every plan
    /// is structurally sound (events target real shards, every shard
    /// gets a quarantine-grade panic burst).
    #[test]
    fn fault_plans_replay_bit_identically(
        seed in any::<u64>(),
        shards in 1usize..5,
        horizon in 16u64..512,
    ) {
        let a = FaultPlan::generate(seed, shards, horizon);
        let b = FaultPlan::generate(seed, shards, horizon);
        prop_assert_eq!(a.render(), b.render());
        prop_assert_eq!(&a, &b);
        for event in &a.events {
            prop_assert!(event.shard < shards);
        }
        for shard in 0..shards {
            let panics = a
                .events
                .iter()
                .filter(|e| e.shard == shard && e.kind == FaultKind::Panic)
                .count();
            prop_assert!(panics >= 5, "shard {} has only {} panics", shard, panics);
        }
    }

    /// Satellite: the jittered backoff schedule is a pure function of
    /// its seed — equal seeds replay equal waits — and every wait
    /// respects the cap and any retry-after floor.
    #[test]
    fn backoff_schedules_replay_and_respect_cap_and_floor(
        seed in any::<u64>(),
        attempts in 1u32..8,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            jitter_seed: seed,
            ..RetryPolicy::default()
        };
        let mut a = JitterRng::new(seed);
        let mut b = JitterRng::new(seed);
        for attempt in 1..=attempts {
            let wait = backoff(&policy, &mut a, attempt, None);
            prop_assert_eq!(wait, backoff(&policy, &mut b, attempt, None));
            prop_assert!(wait <= policy.cap);
        }
        let floor = Duration::from_millis(3);
        let floored = backoff(&policy, &mut a, 1, Some(floor));
        prop_assert!(floored >= floor && floored <= policy.cap);
    }
}
