//! Property tests for structurally-shared snapshots: per-relation `Arc`
//! sharing, per-relation version stamps, and the cache layers built on
//! them.
//!
//! The invariants under test are the ones the serving architecture leans
//! on (docs/ARCHITECTURE.md):
//!
//! * an update touching a subset of relations leaves every *untouched*
//!   relation pointer-equal (`Arc::ptr_eq`) between the old and new
//!   snapshots — publication cost is O(touched), not O(database);
//! * per-relation versions bump **exactly** for the touched relations and
//!   are strictly monotone;
//! * the service's responsibility cache, keyed on the query's relations'
//!   content stamps, keeps serving hits across writes to relations the
//!   query never reads.

use causality::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a store over `n_rels` single-column relations `T0..T{n-1}`,
/// each seeded with a few endogenous tuples.
fn store_with_relations(n_rels: usize) -> SnapshotStore {
    let mut db = Database::new();
    for i in 0..n_rels {
        let rel = db.add_relation(Schema::new(format!("T{i}"), &["x"]));
        for v in 0..3i64 {
            db.insert_endo(rel, vec![Value::from(v)]);
        }
    }
    SnapshotStore::new(db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One update touching an arbitrary subset of relations: untouched
    /// relations stay pointer-equal and keep their stamps; touched ones
    /// diverge and re-stamp monotonically.
    #[test]
    fn untouched_relations_are_pointer_equal_across_versions(
        n_rels in 2usize..7,
        touch_raw in prop::collection::vec(0usize..7, 1..5),
    ) {
        let touched: Vec<usize> = {
            let mut t: Vec<usize> = touch_raw.iter().map(|i| i % n_rels).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let store = store_with_relations(n_rels);
        let before = store.current();
        let stamps_before = before.relation_versions();

        let to_touch = touched.clone();
        let after = store.update(move |db| {
            for &i in &to_touch {
                let rel = RelId(i as u32);
                db.insert_endo(rel, vec![Value::from(100 + i as i64)]);
            }
        });
        prop_assert_eq!(after.version(), before.version() + 1);

        let stamps_after = after.relation_versions();
        for i in 0..n_rels {
            let rel = RelId(i as u32);
            let shared = Arc::ptr_eq(before.relation_arc(rel), after.relation_arc(rel));
            if touched.contains(&i) {
                prop_assert!(!shared, "touched T{} must be copied, not shared", i);
                prop_assert!(
                    stamps_after[i].1 > stamps_before[i].1,
                    "touched T{} must re-stamp monotonically", i
                );
            } else {
                prop_assert!(shared, "untouched T{} must stay pointer-equal", i);
                prop_assert_eq!(
                    stamps_after[i], stamps_before[i],
                    "untouched T{} must keep its stamp", i
                );
            }
        }
    }

    /// A chain of single-relation updates: each published version shares
    /// all but one relation with its predecessor, and a reader pinned at
    /// version 1 still sees the original contents at the end.
    #[test]
    fn single_touch_chains_share_all_but_one_relation(
        n_rels in 3usize..6,
        touches in prop::collection::vec(0usize..6, 1..6),
    ) {
        let store = store_with_relations(n_rels);
        let pinned = store.current();
        let mut prev = store.current();
        for (step, raw) in touches.iter().enumerate() {
            let hit = raw % n_rels;
            let next = store.update(move |db| {
                let rel = RelId(hit as u32);
                db.insert_endo(rel, vec![Value::from(1000 + step as i64)]);
            });
            let shared = (0..n_rels)
                .filter(|&i| {
                    Arc::ptr_eq(
                        prev.relation_arc(RelId(i as u32)),
                        next.relation_arc(RelId(i as u32)),
                    )
                })
                .count();
            prop_assert_eq!(shared, n_rels - 1, "exactly one relation copied per step");
            prev = next;
        }
        // The pinned version-1 reader never saw any of it.
        prop_assert_eq!(pinned.tuple_count(), n_rels * 3);
    }

    /// Service responsibility-cache hits survive writes to relations the
    /// query does not read, and are bit-identical to the cold answer.
    #[test]
    fn service_cache_hits_survive_unrelated_writes(
        unrelated_writes in 1usize..4,
        values in prop::collection::vec(0i64..5, 1..4),
    ) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        db.add_relation(Schema::new("Unrelated", &["z"]));
        for &v in &values {
            db.insert_endo(r, vec![Value::from(v), Value::from(v + 1)]);
            db.insert_endo(s, vec![Value::from(v + 1)]);
        }
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let answer = vec![Value::from(values[0])];
        let svc = CausalityService::new(db);

        let req = ExplainRequest::why_so(q, answer);
        let cold = svc.explain(req.clone()).unwrap();
        prop_assert!(!cold.cache_hit);

        for i in 0..unrelated_writes {
            svc.update(move |db| {
                let u = db.relation_id("Unrelated").unwrap();
                db.insert_endo(u, vec![Value::from(i as i64)]);
            });
        }
        let warm = svc.explain(req.clone()).unwrap();
        prop_assert!(warm.cache_hit, "unrelated writes must not evict the answer");
        prop_assert_eq!(
            warm.result.clone().unwrap(),
            cold.result.clone().unwrap(),
            "hit is bit-identical to the cold answer"
        );
        prop_assert_eq!(warm.snapshot_version, 1 + unrelated_writes as u64);

        // A write to a relation the query *does* read must miss.
        svc.update(|db| {
            let s = db.relation_id("S").unwrap();
            db.insert_endo(s, vec![Value::from(999)]);
        });
        let miss = svc.explain(req).unwrap();
        prop_assert!(!miss.cache_hit, "touching S moves the fingerprint");
    }
}

/// The engine-level contract the service keying relies on: evaluating
/// through one shared cache across a write to an unrelated relation
/// rebuilds nothing.
#[test]
fn shared_index_cache_needs_no_rebuild_after_unrelated_write() {
    let store = store_with_relations(3);
    let cache = SharedIndexCache::new();
    let q = ConjunctiveQuery::parse("q(x) :- T0(x), T1(x)").unwrap();

    let v1 = store.current();
    let cold = evaluate_with_cache(&v1, &q, &cache).unwrap();
    let built = cache.len();
    assert!(built > 0);

    let v2 = store.update(|db| {
        let t2 = db.relation_id("T2").unwrap();
        db.insert_endo(t2, vec![Value::from(41)]);
    });
    let warm = evaluate_with_cache(&v2, &q, &cache).unwrap();
    assert_eq!(cache.len(), built, "T0/T1 indexes stayed warm");
    assert_eq!(cold.answers, warm.answers);

    // Writing T0 invalidates exactly T0's entries once evicted; T1's
    // index (and correctness) are untouched.
    let v3 = store.update(|db| {
        let t0 = db.relation_id("T0").unwrap();
        db.insert_endo(t0, vec![Value::from(7)]);
    });
    evaluate_with_cache(&v3, &q, &cache).unwrap();
    let evicted = cache.retain_versions(&v3.relation_versions());
    assert_eq!(evicted, 1, "only T0's stale index dies");
    let again = evaluate_with_cache(&v3, &q, &cache).unwrap();
    assert_eq!(again.answers, warm.answers, "7 ∉ T1: same answers");
}
