//! Integration tests for the sharded serving tier: stable tenant
//! routing, admission control, deadline budgets, and cross-shard
//! failure isolation — all under hard timeouts, so a deadlock anywhere
//! in the front-end/dispatch/shard stack fails fast instead of hanging
//! CI.

use causality::prelude::*;
use proptest::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_deadline(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("sharding scenario exceeded {HARD_TIMEOUT:?} — deadlock?")
        }
    }
}

fn seed_database() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3")] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3", "a4"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
}

fn small_tier(shards: usize) -> ShardedService {
    ShardedService::new(TierConfig {
        shards,
        shard: ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    })
}

/// Register numbered tenants until two land on different shards;
/// returns their ids (first tenant registered, first elsewhere).
fn two_tenants_on_different_shards(tier: &ShardedService) -> (TenantId, TenantId) {
    let first = tier.add_tenant("tenant-0", seed_database()).unwrap();
    for i in 1..64 {
        let id = tier
            .add_tenant(&format!("tenant-{i}"), seed_database())
            .unwrap();
        if id.shard() != first.shard() {
            return (first, id);
        }
    }
    panic!("64 FNV-hashed names cannot all land on one of several shards");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Routing is a pure function of tenant name and shard count: two
    /// independently built tiers assign every name the same shard, and
    /// writes to any tenant never move any tenant (the property that
    /// keeps per-shard caches warm under write traffic).
    #[test]
    fn tenant_routing_is_stable_across_tiers_and_writes(
        ids in prop::collection::vec(0u16..1000, 1..12),
    ) {
        let mut names: Vec<String> = ids.iter().map(|i| format!("tenant-{i}")).collect();
        names.sort();
        names.dedup();
        let tier_a = small_tier(4);
        let tier_b = small_tier(4);
        let mut registered = Vec::new();
        for name in &names {
            let a = tier_a.add_tenant(name, seed_database()).unwrap();
            let b = tier_b.add_tenant(name, seed_database()).unwrap();
            prop_assert!(a.shard() < 4);
            prop_assert_eq!(a.shard(), b.shard());
            registered.push((name.clone(), a));
        }
        // Write to every tenant; no assignment may move.
        for (_, id) in &registered {
            tier_a.update(*id, |db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, vec![Value::str("w")]);
            }).unwrap();
        }
        for (name, id) in &registered {
            prop_assert_eq!(tier_a.tenant_id(name), Some(*id));
        }
        tier_a.shutdown();
        tier_b.shutdown();
    }
}

/// One tenant's write traffic must not cool another tenant's shard:
/// per-shard index caches and responsibility LRUs make cross-tenant
/// eviction structurally impossible.
#[test]
fn warm_cache_survives_other_tenants_writes() {
    with_deadline(|| {
        let tier = small_tier(2);
        let (alice, bob) = two_tenants_on_different_shards(&tier);

        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        assert!(!tier.explain(bob, req.clone()).unwrap().cache_hit);
        assert!(tier.explain(bob, req.clone()).unwrap().cache_hit);

        let bob_before = tier.stats().shards[bob.shard()];
        for i in 0..20 {
            tier.update(alice, |db| {
                let s = db.relation_id("S").unwrap();
                db.insert_endo(s, vec![Value::str(format!("w{i}"))]);
            })
            .unwrap();
            // Keep alice's shard actively recomputing her own query too.
            tier.explain(
                alice,
                ExplainRequest::why_so(query(), vec![Value::str("a2")]),
            )
            .unwrap()
            .result
            .unwrap();
        }
        let warm = tier.explain(bob, req).unwrap();
        assert!(
            warm.cache_hit,
            "alice's writes (shard {}) must not evict bob's warm entry (shard {})",
            alice.shard(),
            bob.shard()
        );
        let bob_after = tier.stats().shards[bob.shard()];
        assert_eq!(
            bob_before.index_evictions, bob_after.index_evictions,
            "no index eviction on bob's shard"
        );
        assert_eq!(
            bob_before.cache_misses, bob_after.cache_misses,
            "bob never recomputed"
        );
        tier.shutdown();
    });
}

/// Past the admission limit, submissions come back as `Overloaded`
/// errors — every op is either accepted (and later served) or visibly
/// rejected; nothing blocks, nothing is dropped.
#[test]
fn admission_rejects_are_returned_not_dropped() {
    with_deadline(|| {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            admission_limit: 2,
            shard: ServiceConfig {
                workers: 1,
                batch_max: 1,
                queue_capacity: 64,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let tenant = tier.add_tenant("hot", seed_database()).unwrap();
        tier.inject_delay(|_| Some(Duration::from_millis(25)));

        let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..40 {
            match tier.submit(tenant, req.clone()) {
                Ok(pending) => accepted.push(pending),
                Err(ServiceError::Overloaded { retry_after }) => {
                    assert!(
                        retry_after >= Duration::from_millis(1),
                        "the reject carries a usable retry-after hint"
                    );
                    rejected += 1;
                }
                Err(other) => panic!("only Overloaded expected, got {other}"),
            }
        }
        assert_eq!(accepted.len() as u64 + rejected, 40, "no op vanished");
        assert!(rejected > 0, "an open loop of 40 must overrun a limit of 2");
        for pending in accepted {
            pending.wait().unwrap().result.unwrap();
        }
        let stats = tier.stats().aggregate();
        assert_eq!(stats.admission_rejects, rejected);
        assert_eq!(stats.queue_depth, 0, "queue fully drained");
        tier.shutdown();
    });
}

/// An expired deadline budget yields `DeadlineExceeded` — the job is
/// answered, counted, and never occupies a worker with computation.
#[test]
fn expired_deadline_is_an_error_not_a_computation() {
    with_deadline(|| {
        let tier = ShardedService::new(TierConfig {
            shards: 1,
            shard: ServiceConfig {
                workers: 1,
                // One job per pull: FIFO guarantees the stalled blocker
                // is processed (and sleeps) before the doomed job is
                // drained, by which point its budget has expired.
                batch_max: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let tenant = tier.add_tenant("t", seed_database()).unwrap();
        tier.inject_delay(|req| {
            (req.answer == vec![Value::str("a2")]).then_some(Duration::from_millis(150))
        });

        let blocker = tier
            .submit(
                tenant,
                ExplainRequest::why_so(query(), vec![Value::str("a2")]),
            )
            .unwrap();
        let doomed = tier
            .submit_with_deadline(
                tenant,
                ExplainRequest::why_so(query(), vec![Value::str("a3")]),
                Duration::from_millis(10),
            )
            .unwrap();
        assert!(matches!(
            doomed.wait().unwrap().result,
            Err(ServiceError::DeadlineExceeded)
        ));
        blocker.wait().unwrap().result.unwrap();

        let stats = tier.stats().aggregate();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(
            stats.cache_misses, 1,
            "only the blocker computed; the expired job cost a response, not a worker"
        );
        tier.shutdown();
    });
}

/// Chaos: panic every request of one tenant (= one shard) and flood it
/// with more faulting jobs than the pool has workers. The victim shard
/// answers every one with `Panicked`; the other shard keeps serving
/// normally, uncounted and uncooled.
#[test]
fn panicking_one_shard_leaves_the_others_serving() {
    with_deadline(|| {
        // Breakers off: this test is about panic *isolation*; eight
        // straight panics would trip the victim tenant's breaker (its
        // own protection is covered in tests/service_selfheal.rs).
        let tier = ShardedService::new(TierConfig {
            shards: 2,
            breaker: BreakerConfig::disabled(),
            shard: ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ..TierConfig::default()
        });
        let (victim, bystander) = two_tenants_on_different_shards(&tier);

        // Warm the bystander first so we can also prove its cache stays.
        let calm = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
        tier.explain(bystander, calm.clone())
            .unwrap()
            .result
            .unwrap();

        // Fault hook matches on a marker only the victim's requests use.
        let poisoned = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
        tier.inject_fault({
            let marker = poisoned.clone();
            move |req| *req == marker
        });

        let pending: Vec<_> = (0..8)
            .map(|_| tier.submit(victim, poisoned.clone()).unwrap())
            .collect();
        for handle in pending {
            assert!(matches!(
                handle.wait().unwrap().result,
                Err(ServiceError::Panicked(_))
            ));
        }

        // The bystander's shard: alive, warm, and panic-free.
        let warm = tier.explain(bystander, calm).unwrap();
        warm.result.clone().unwrap();
        assert!(warm.cache_hit, "bystander's cache survived the blast");
        let stats = tier.stats();
        assert!(stats.shards[victim.shard()].panics_caught >= 1);
        assert_eq!(stats.shards[bystander.shard()].panics_caught, 0);

        // The victim shard itself also survives: clear the hook and serve.
        tier.clear_faults();
        tier.explain(
            victim,
            ExplainRequest::why_so(query(), vec![Value::str("a3")]),
        )
        .unwrap()
        .result
        .unwrap();
        tier.shutdown();
    });
}
