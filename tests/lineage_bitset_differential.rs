//! Differential property tests for the interned-arena bitset kernels:
//! on random DNFs, the `BitDnf`/`VarSet` implementations of minimize,
//! assign-true/false, minimum contingency, and minimum hitting set must
//! be **result-identical** — same tuples, same order — to the seed
//! `BTreeSet` implementations retained in `causality_lineage::oracle`
//! and `causality_core::resp::exact::oracle`. A final pair of
//! properties re-runs the ranking bit-identity guarantee on top of the
//! arena path: exact ranking matches the per-cause oracle, and the
//! parallel executor stays bit-identical to sequential.

use causality::prelude::*;
use causality_core::ranking::{rank_why_so_cached, rank_why_so_parallel, RankConfig};
use causality_core::resp::exact;
use causality_lineage::{oracle as lineage_oracle, Conjunct, Dnf, LineageArena};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a DNF from raw `(rel, row)` conjunct descriptions. Empty inner
/// vectors become the empty conjunct (the tautology case).
fn dnf_of(raw: &[Vec<(u32, u32)>]) -> Dnf {
    Dnf::new(
        raw.iter()
            .map(|c| Conjunct::new(c.iter().map(|&(r, w)| TupleRef::new(r, w))))
            .collect(),
    )
}

fn refs_of(raw: &[(u32, u32)]) -> BTreeSet<TupleRef> {
    raw.iter().map(|&(r, w)| TupleRef::new(r, w)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Minimization: bitset absorption (size-sorted, equal-size probes
    /// skipped) returns exactly the seed's unique minimal sorted DNF.
    #[test]
    fn minimize_matches_oracle(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..12), 0..5), 0..30),
    ) {
        let phi = dnf_of(&raw);
        prop_assert_eq!(phi.minimized(), lineage_oracle::minimized(&phi));
    }

    /// Restriction kernels: `BitDnf::assign_true/false` agree with the
    /// `Dnf` originals conjunct-for-conjunct after arena round-trip.
    #[test]
    fn assign_matches_dnf(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..12), 0..5), 0..30),
        mask_raw in prop::collection::vec((0u32..3, 0u32..12), 0..8),
    ) {
        let phi = dnf_of(&raw);
        let mask = refs_of(&mask_raw);
        let (arena, bits) = LineageArena::from_dnf(&phi);
        // Only interned variables can appear in a bit mask; variables
        // outside the lineage are no-ops on both sides.
        let bit_mask: causality_lineage::VarSet = mask
            .iter()
            .filter_map(|&t| arena.id(t).map(|v| v as usize))
            .collect();
        prop_assert_eq!(
            arena.dnf_of(&bits.assign_true(&bit_mask)),
            phi.assign_true(&mask)
        );
        prop_assert_eq!(
            arena.dnf_of(&bits.assign_false(&bit_mask)),
            phi.assign_false(&mask)
        );
    }

    /// Minimum contingency: for every variable of a random minimized
    /// DNF, the bitset branch-and-bound returns the *identical* witness
    /// (same tuples, same order) as the seed solver.
    #[test]
    fn contingency_matches_oracle(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..3, 0u32..10), 0..4), 0..20),
    ) {
        let phin = dnf_of(&raw).minimized();
        for t in phin.variables() {
            prop_assert_eq!(
                exact::min_contingency_from_lineage(&phin, t),
                exact::oracle::min_contingency_from_lineage(&phin, t),
                "tuple {:?} of {:?}", t, &phin
            );
        }
    }

    /// Minimum hitting set: identical output (order included) across
    /// random set systems and every upper-bound regime, including
    /// instances made infeasible by an empty set.
    #[test]
    fn hitting_set_matches_oracle(
        raw in prop::collection::vec(
            prop::collection::vec((0u32..2, 0u32..10), 0..4), 0..12),
        upper in 0usize..6,
    ) {
        let sets: Vec<BTreeSet<TupleRef>> = raw.iter().map(|s| refs_of(s)).collect();
        for bound in [None, Some(upper)] {
            prop_assert_eq!(
                exact::min_hitting_set(&sets, bound),
                exact::oracle::min_hitting_set(&sets, bound),
                "sets {:?} bound {:?}", &sets, bound
            );
        }
    }

    /// Ranking on the arena path: every exact-ranked responsibility
    /// (ρ *and* contingency witness) equals what the seed per-cause
    /// pipeline — oracle minimize + oracle contingency — derives.
    #[test]
    fn exact_ranking_matches_oracle_pipeline(
        r_rows in prop::collection::vec((0u8..4, 0u8..4), 1..7),
        s_rows in prop::collection::vec(0u8..4, 1..5),
    ) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        for &(x, y) in &r_rows {
            db.insert_endo(r, vec![Value::from(i64::from(x)), Value::from(i64::from(y))]);
        }
        for &y in &s_rows {
            db.insert_endo(s, vec![Value::from(i64::from(y))]);
        }
        let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap();
        let phin = lineage_oracle::minimized(&causality_lineage::n_lineage(&db, &q).unwrap());
        for rc in rank_why_so_cached(&db, &q, Method::Exact, None).unwrap() {
            let gamma = exact::oracle::min_contingency_from_lineage(&phin, rc.tuple)
                .expect("ranked causes are causes");
            prop_assert_eq!(
                rc.responsibility.min_contingency.as_deref(),
                Some(gamma.as_slice()),
                "tuple {:?}", rc.tuple
            );
            prop_assert!(
                (rc.responsibility.rho - 1.0 / (1.0 + gamma.len() as f64)).abs() < 1e-12
            );
        }
    }

    /// Parallel top-k bit-identity, re-run on the arena path: the
    /// sharded `&VarSet` lineage must not perturb order or pruning.
    #[test]
    fn parallel_ranking_bit_identical_on_arena_path(
        r_rows in prop::collection::vec((0u8..4, 0u8..4), 1..7),
        s_rows in prop::collection::vec(0u8..4, 1..5),
        k in 1usize..5,
    ) {
        let mut db = Database::new();
        let r = db.add_relation(Schema::new("R", &["x", "y"]));
        let s = db.add_relation(Schema::new("S", &["y"]));
        for &(x, y) in &r_rows {
            db.insert_endo(r, vec![Value::from(i64::from(x)), Value::from(i64::from(y))]);
        }
        for &y in &s_rows {
            db.insert_endo(s, vec![Value::from(i64::from(y))]);
        }
        let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap();
        let sequential = rank_why_so_cached(&db, &q, Method::Auto, None).unwrap();
        for parallelism in [1usize, 2, 8] {
            let full = rank_why_so_parallel(
                &db, &q, &RankConfig::with_parallelism(parallelism), None).unwrap();
            prop_assert_eq!(&full.causes, &sequential);
            let topk = rank_why_so_parallel(
                &db, &q, &RankConfig::with_parallelism(parallelism).top_k(k), None).unwrap();
            prop_assert_eq!(&topk.causes, &sequential[..k.min(sequential.len())]);
        }
    }
}

/// A deterministic spot check that the differential surface includes
/// the tautology and unsatisfiable corners (cheap to pin exactly).
#[test]
fn corner_cases_match_oracle() {
    for phi in [
        Dnf::unsatisfiable(),
        Dnf::new(vec![Conjunct::empty()]),
        Dnf::new(vec![
            Conjunct::empty(),
            Conjunct::new([TupleRef::new(0, 1)]),
        ]),
    ] {
        assert_eq!(phi.minimized(), lineage_oracle::minimized(&phi));
        for t in phi.variables() {
            assert_eq!(
                exact::min_contingency_from_lineage(&phi.minimized(), t),
                exact::oracle::min_contingency_from_lineage(&phi.minimized(), t)
            );
        }
    }
}
