//! Integration tests reproducing every worked example in the paper.
//!
//! Each test cites the example/figure it validates; together they form
//! the "paper conformance suite" (see EXPERIMENTS.md).

use causality::prelude::*;
use causality_core::dichotomy::aquery::AQuery;
use causality_core::dichotomy::classify::classify_why_so;
use causality_core::resp::exact::why_so_responsibility_exact;
use causality_datagen::imdb::{burton_genre_query, fig2a_instance};
use causality_engine::database::example_2_2;
use causality_engine::{tup, TupleRef};

fn tref(db: &Database, rel: &str, tuple: Tuple) -> TupleRef {
    let rid = db.relation_id(rel).unwrap();
    TupleRef {
        rel: rid,
        row: db.relation(rid).find(&tuple).unwrap(),
    }
}

/// Example 2.2: S(a1) is counterfactual for answer a2; S(a3) is an actual
/// cause for a4 with contingency {S(a2)}.
#[test]
fn example_2_2_causality() {
    let db = example_2_2();
    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();

    let causes_a2 = why_so_causes(&db, &q.ground(&[Value::from("a2")])).unwrap();
    assert!(causes_a2
        .counterfactual
        .contains(&tref(&db, "S", tup!["a1"])));

    let causes_a4 = why_so_causes(&db, &q.ground(&[Value::from("a4")])).unwrap();
    let s_a3 = tref(&db, "S", tup!["a3"]);
    assert!(causes_a4.actual.contains(&s_a3));
    assert!(!causes_a4.counterfactual.contains(&s_a3));
    let resp = why_so_responsibility_exact(&db, &q.ground(&[Value::from("a4")]), s_a3).unwrap();
    assert_eq!(resp.min_contingency.unwrap().len(), 1);
}

/// Example 2.2 (Boolean part): with Rx = {(a4,a3),(a4,a2)}, the tuple
/// Rn(a3,a3) is not an actual cause of q :- R(x,'a3'), S('a3').
#[test]
fn example_2_2_boolean_query() {
    let mut db = example_2_2();
    let r = db.relation_id("R").unwrap();
    for t in [tup!["a4", "a3"], tup!["a4", "a2"]] {
        let row = db.relation(r).find(&t).unwrap();
        db.relation_mut(r).set_endogenous(row, false);
    }
    let q = ConjunctiveQuery::parse("q :- R(x, 'a3'), S('a3')").unwrap();
    let causes = why_so_causes(&db, &q).unwrap();
    assert!(!causes.is_cause(tref(&db, "R", tup!["a3", "a3"])));
    assert!(causes.counterfactual.contains(&tref(&db, "S", tup!["a3"])));
}

/// Example 2.4 / Fig. 2b: the full Musical responsibility ranking —
/// reproduced value for value.
#[test]
fn fig_2b_musical_ranking() {
    let (db, refs) = fig2a_instance();
    let q = burton_genre_query();
    let grounded = q.ground(&[Value::from("Musical")]);

    let expectations = [
        (refs.sweeney, 1.0 / 3.0),
        (refs.david, 1.0 / 3.0),
        (refs.humphrey, 1.0 / 3.0),
        (refs.tim, 1.0 / 3.0),
        (refs.falls_in_love, 1.0 / 4.0),
        (refs.melody, 1.0 / 4.0),
        (refs.candide, 1.0 / 5.0),
        (refs.flight, 1.0 / 5.0),
        (refs.manon, 1.0 / 5.0),
    ];
    for (tuple, expected) in expectations {
        let resp = causality_core::resp::why_so_responsibility(&db, &grounded, tuple).unwrap();
        assert!(
            (resp.rho - expected).abs() < 1e-12,
            "tuple {:?}: got {}, paper says {}",
            db.tuple(tuple),
            resp.rho,
            expected
        );
    }

    // Example 2.4's explicit contingencies: Sweeney Todd's is the two
    // other directors; Manon Lescaut's has size 4.
    let sweeney = why_so_responsibility_exact(&db, &grounded, refs.sweeney).unwrap();
    let gamma = sweeney.min_contingency.unwrap();
    assert_eq!(gamma.len(), 2);
    assert!(gamma.contains(&refs.david) && gamma.contains(&refs.humphrey));
    let manon = why_so_responsibility_exact(&db, &grounded, refs.manon).unwrap();
    assert_eq!(manon.min_contingency.unwrap().len(), 4);
}

/// Example 3.3: lineage and n-lineage of q :- R(x,'a3'), S('a3').
#[test]
fn example_3_3_lineage() {
    let mut db = example_2_2();
    let r = db.relation_id("R").unwrap();
    let row = db.relation(r).find(&tup!["a4", "a3"]).unwrap();
    db.relation_mut(r).set_endogenous(row, false);

    let q = ConjunctiveQuery::parse("q :- R(x, 'a3'), S('a3')").unwrap();
    let phi = lineage(&db, &q).unwrap();
    assert_eq!(phi.len(), 2);
    let phin = n_lineage(&db, &q).unwrap().minimized();
    assert_eq!(phin.len(), 1);
    assert_eq!(phin.conjuncts()[0].len(), 1, "Φn ≡ X_S(a3)");
}

/// Examples 3.5 and 3.6: the generated Datalog programs compute the same
/// causes as Theorem 3.2, and causality is non-monotone.
#[test]
fn examples_3_5_and_3_6_datalog() {
    use causality_core::fo::run_causal_program;

    // Example 3.5's instance.
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    db.insert_exo(r, tup!["a4", "a3"]);
    db.insert_endo(r, tup!["a3", "a3"]);
    db.insert_endo(s, tup!["a3"]);
    let q = ConjunctiveQuery::parse("q :- R(x, y), S(y)").unwrap();
    let causes = run_causal_program(&db, &q).unwrap();
    assert!(causes["R"].is_empty());
    assert_eq!(causes["S"], vec![tup!["a3"]]);

    // Non-monotonicity: without R(a4,a3), R(a3,a3) becomes a cause.
    let mut db2 = Database::new();
    let r2 = db2.add_relation(Schema::new("R", &["x", "y"]));
    let s2 = db2.add_relation(Schema::new("S", &["y"]));
    db2.insert_endo(r2, tup!["a3", "a3"]);
    db2.insert_endo(s2, tup!["a3"]);
    let causes2 = run_causal_program(&db2, &q).unwrap();
    assert_eq!(causes2["R"], vec![tup!["a3", "a3"]]);
}

/// Example 4.2: flow-based responsibility on R(x,y), S(y,z) agrees with
/// the exact solver across a batch of instances.
#[test]
fn example_4_2_flow_equals_exact() {
    use causality_core::resp::flow::why_so_responsibility_flow;
    use causality_datagen::workloads::{chain, ChainConfig};

    for seed in 0..5 {
        let inst = chain(&ChainConfig {
            atoms: 2,
            tuples_per_relation: 15,
            domain_per_layer: 4,
            seed,
        });
        for t in inst.db.endogenous_tuples() {
            let flow = why_so_responsibility_flow(&inst.db, &inst.query, t).unwrap();
            let exact = why_so_responsibility_exact(&inst.db, &inst.query, t).unwrap();
            assert_eq!(flow.rho, exact.rho, "seed {seed}, tuple {t:?}");
        }
    }
}

/// Example 4.8: the 4-cycle query is NP-hard via rewriting to h2*.
#[test]
fn example_4_8_rewriting() {
    let q = ConjunctiveQuery::parse("q :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)").unwrap();
    match classify_why_so(&q).unwrap() {
        Complexity::NpHard(cert) => assert_eq!(cert.target.name(), "h2*"),
        other => panic!("expected NP-hard, got {}", other.label()),
    }
}

/// Example 4.12: both queries are weakly linear (PTIME).
#[test]
fn example_4_12_weakenings() {
    for text in [
        "q :- R^n(x, y), S^x(y, z), T^n(z, x)",
        "q :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)",
    ] {
        let q = ConjunctiveQuery::parse(text).unwrap();
        assert!(classify_why_so(&q).unwrap().is_ptime(), "{text}");
    }
}

/// Theorem 4.1: all three canonical queries classify NP-hard; Fig. 5's
/// linear query classifies PTIME.
#[test]
fn fig_3_complexity_table() {
    let hard = [
        "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
        "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
        "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
    ];
    for text in hard {
        let q = ConjunctiveQuery::parse(text).unwrap();
        assert!(!classify_why_so(&q).unwrap().is_ptime(), "{text}");
    }
    let easy = ConjunctiveQuery::parse(
        "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
    )
    .unwrap();
    assert!(classify_why_so(&easy).unwrap().is_ptime());
}

/// Fig. 5: dual hypergraph structure of the two displayed queries.
#[test]
fn fig_5_dual_hypergraphs() {
    use causality_core::dichotomy::linearity::{dual_hypergraph, is_linear};
    let q5a = AQuery::parse(
        "q :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
    )
    .unwrap();
    let h = dual_hypergraph(&q5a);
    assert_eq!(h.vertex_count(), 7);
    assert_eq!(h.edge_count(), 6);
    assert!(is_linear(&q5a));

    let h1 = AQuery::parse("h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)").unwrap();
    assert!(!is_linear(&h1));
}

/// Proposition 4.16 and the open self-join case are reported as such.
#[test]
fn self_join_classification() {
    let sj = ConjunctiveQuery::parse("q :- R^n(x), S^x(x, y), R^n(y)").unwrap();
    assert!(matches!(
        classify_why_so(&sj).unwrap(),
        Complexity::HardSelfJoin
    ));
    let open = ConjunctiveQuery::parse("q :- R^n(x, y), R^n(y, z)").unwrap();
    assert!(matches!(
        classify_why_so(&open).unwrap(),
        Complexity::OpenSelfJoin
    ));
}

/// Footnote 4 (Sect. 5): with all tuples endogenous, Why-So causes equal
/// the union of the minimal witness basis (why-provenance).
#[test]
fn why_provenance_correspondence() {
    use causality_lineage::witness::witness_union;
    let db = example_2_2();
    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
    for answer in ["a2", "a3", "a4"] {
        let grounded = q.ground(&[Value::from(answer)]);
        let causes = why_so_causes(&db, &grounded).unwrap();
        let union = witness_union(&db, &grounded).unwrap();
        assert_eq!(causes.actual, union, "answer {answer}");
    }
}
