//! CI guard for the lineage-kernel complexity class.
//!
//! The bitset kernels make DNF minimization of an already-minimal
//! same-size lineage effectively linear (size-sort + zero subset
//! probes) and keep the hitting-set greedy at word-op cost per scan. An
//! accidental reintroduction of the seed's quadratic full-subset-test
//! scan (or per-pick `HashMap` rebuilds) turns the workloads below from
//! fractions of a second into minutes — so this test runs the kernel
//! suite at a size where O(n²) tree-walking cannot finish inside the
//! hard deadline. CI runs it in release (like the service concurrency
//! guards); the debug-profile deadline is proportionally looser so
//! plain `cargo test` stays reliable.

use causality_core::resp::exact::{min_contingency_from_lineage, min_hitting_set};
use causality_engine::TupleRef;
use causality_lineage::{Conjunct, Dnf};
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const RELEASE_TIMEOUT: Duration = Duration::from_secs(20);
const DEBUG_TIMEOUT: Duration = Duration::from_secs(180);

fn hard_timeout() -> Duration {
    if cfg!(debug_assertions) {
        DEBUG_TIMEOUT
    } else {
        RELEASE_TIMEOUT
    }
}

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_deadline(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let timeout = hard_timeout();
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(timeout) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!(
                "lineage kernel suite exceeded {timeout:?} — \
                 quadratic scan reintroduced on the hot path?"
            )
        }
    }
}

/// A large already-minimal lineage in the shape every self-join-free
/// query produces: n distinct same-size conjuncts. The seed minimizer
/// performs n²/2 full subset walks here; the bitset minimizer performs
/// zero.
fn large_minimal_lineage(n: u32) -> Dnf {
    Dnf::new(
        (0..n)
            .map(|i| Conjunct::new([TupleRef::new(0, i), TupleRef::new(1, i % 977)]))
            .collect(),
    )
}

/// A clustered hitting-set instance (hub-and-spoke): greedy is optimal
/// and the branch-and-bound prunes at the root, so runtime is pure
/// frequency-scan cost — the part the bitsets accelerate.
fn clustered_sets(hubs: u32, spokes_per_hub: u32) -> Vec<BTreeSet<TupleRef>> {
    let mut sets = Vec::new();
    for hub in 0..hubs {
        for s in 0..spokes_per_hub {
            sets.push(
                [
                    TupleRef::new(0, hub),
                    TupleRef::new(1, hub * spokes_per_hub + s),
                ]
                .into(),
            );
        }
    }
    sets
}

#[test]
fn kernel_suite_completes_under_hard_deadline() {
    with_deadline(|| {
        let started = Instant::now();

        // 1. Minimization at 30k conjuncts (seed: ~450M subset walks).
        let phi = large_minimal_lineage(30_000);
        let phin = phi.minimized();
        assert_eq!(phin.len(), 30_000, "already minimal: nothing absorbed");

        // 2. Restriction kernels over a large mask.
        let mask: BTreeSet<TupleRef> = (0..977).map(|i| TupleRef::new(1, i)).collect();
        let restricted = phin.assign_true(&mask);
        assert_eq!(restricted.len(), 30_000);
        assert!(restricted.minimized().len() <= 30_000);
        assert_eq!(phin.assign_false(&mask).len(), 0);

        // 3. Hitting set over 3000 clustered sets (600 optimal picks).
        let sets = clustered_sets(600, 5);
        let hit = min_hitting_set(&sets, None).expect("feasible");
        assert_eq!(hit.len(), 600, "one hub per cluster");

        // 4. Exact contingency on a two-witness lineage over the large
        //    instance: the solver must hit every other conjunct.
        let t = TupleRef::new(0, 0);
        let small = large_minimal_lineage(900);
        let gamma = min_contingency_from_lineage(&small.minimized(), t)
            .expect("t is a cause of its own conjunct");
        assert_eq!(gamma.len(), 899, "hit each of the other conjuncts");

        println!(
            "lineage kernel suite finished in {:?} (deadline {:?})",
            started.elapsed(),
            hard_timeout()
        );
    });
}
