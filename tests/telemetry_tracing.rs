//! End-to-end request tracing through the serving tier: sampling rates,
//! stage chains, ring-buffer bounds, slow-log capture, and exporter
//! output — driven through the public service APIs only.

use causality::prelude::*;
use causality_engine::database::example_2_2;
use std::time::Duration;

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap()
}

fn traced_config(telemetry: TelemetryConfig) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        telemetry,
        ..ServiceConfig::default()
    }
}

/// Satellite: sampling rate 0 must allocate no trace at all — the
/// sampled counter stays 0, the ring stays empty, and the Prometheus
/// export says so.
#[test]
fn rate_zero_samples_nothing_and_allocates_nothing() {
    let svc = CausalityService::with_config(
        example_2_2(),
        traced_config(TelemetryConfig {
            sample_rate: 0.0,
            ..TelemetryConfig::default()
        }),
    );
    for _ in 0..20 {
        let resp = svc
            .explain(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
        assert!(resp.result.is_ok());
    }
    assert!(svc.recent_traces().is_empty(), "no traces retained");
    assert!(svc.slow_log_records().is_empty());
    let prom = svc.export_metrics();
    assert!(
        prom.contains("causality_traces_sampled_total{shard=\"0\"} 0"),
        "sampled counter must be zero:\n{prom}"
    );
    svc.shutdown();
}

/// Full sampling: a cold request's trace carries the complete ordered
/// stage chain, `ok` outcome, and the dichotomy attributes; a warm
/// (cache-hit) request's trace skips the lineage/kernel stages.
#[test]
fn full_sampling_records_the_complete_stage_chain() {
    let svc =
        CausalityService::with_config(example_2_2(), traced_config(TelemetryConfig::default()));
    let req = ExplainRequest::why_so(query(), vec![Value::str("a4")]);
    assert!(!svc.explain(req.clone()).unwrap().cache_hit);
    assert!(svc.explain(req).unwrap().cache_hit);

    let traces = svc.recent_traces();
    assert_eq!(traces.len(), 2, "both requests sampled");
    let cold = &traces[0];
    let warm = &traces[1];

    let cold_chain: Vec<&str> = cold.stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(
        cold_chain,
        vec![
            "admission",
            "dispatch",
            "shard_queue",
            "worker_dequeue",
            "snapshot_pin",
            "lineage_intern",
            "kernel_solve",
            "respond",
        ],
        "cold request passes every stage in order"
    );
    for pair in cold.stages.windows(2) {
        assert!(pair[0].start_us <= pair[1].start_us, "starts are monotone");
    }
    assert_eq!(cold.outcome, "ok");
    assert_eq!(cold.kind, "why_so");
    assert!(!cold.cache_hit);
    assert_eq!(cold.relations, 2);
    assert_eq!(cold.dichotomy, "PTIME", "weakly linear per Cor. 4.14");
    assert!(cold.lineage_conjuncts > 0);
    assert!((cold.rho_max - 0.5).abs() < 1e-12);
    assert_eq!(cold.snapshot_version, 1);
    assert_eq!(cold.deadline_slack_us, None, "no deadline was set");

    let warm_chain: Vec<&str> = warm.stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(
        warm_chain,
        vec![
            "admission",
            "dispatch",
            "shard_queue",
            "worker_dequeue",
            "snapshot_pin",
            "respond",
        ],
        "cache hit never touches lineage or kernels"
    );
    assert!(warm.cache_hit);
    assert!(warm.seq > cold.seq, "per-shard seq increases");
    svc.shutdown();
}

/// Satellite: the trace ring is bounded — pushing past capacity
/// overwrites the oldest traces and counts the evictions.
#[test]
fn trace_ring_overwrites_oldest_at_capacity() {
    let svc = CausalityService::with_config(
        example_2_2(),
        traced_config(TelemetryConfig {
            trace_ring: 4,
            ..TelemetryConfig::default()
        }),
    );
    for _ in 0..10 {
        svc.explain(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
            .unwrap();
    }
    let traces = svc.recent_traces();
    assert_eq!(traces.len(), 4, "ring holds exactly its capacity");
    let seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
    let newest: Vec<u64> = (6..10).collect();
    assert_eq!(seqs, newest, "the oldest six traces were overwritten");
    let prom = svc.export_metrics();
    assert!(
        prom.contains("causality_traces_overwritten_total{shard=\"0\"} 6"),
        "evictions counted:\n{prom}"
    );
    svc.shutdown();
}

/// A request with a generous deadline reports positive slack in its
/// trace.
#[test]
fn deadline_slack_is_positive_under_a_generous_budget() {
    let svc =
        CausalityService::with_config(example_2_2(), traced_config(TelemetryConfig::default()));
    let resp = svc
        .submit_with_deadline(
            ExplainRequest::why_so(query(), vec![Value::str("a3")]),
            Duration::from_secs(30),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert!(resp.result.is_ok());
    let traces = svc.recent_traces();
    assert_eq!(traces.len(), 1);
    let slack = traces[0].deadline_slack_us.expect("deadline was stamped");
    assert!(slack > 0, "30s budget leaves positive slack, got {slack}");
    svc.shutdown();
}

/// A latency threshold of zero puts every request in the slow-log, with
/// the full span breakdown attached.
#[test]
fn slow_log_captures_requests_over_the_latency_threshold() {
    let svc = CausalityService::with_config(
        example_2_2(),
        traced_config(TelemetryConfig {
            slow_latency: Some(Duration::ZERO),
            ..TelemetryConfig::default()
        }),
    );
    svc.explain(ExplainRequest::why_so(query(), vec![Value::str("a2")]))
        .unwrap();
    let slow = svc.slow_log_records();
    assert_eq!(slow.len(), 1, "zero threshold catches everything");
    assert!(
        !slow[0].stages.is_empty(),
        "slow record keeps the breakdown"
    );
    let jsonl = svc.export_slow_log();
    assert!(jsonl.contains("\"outcome\":\"ok\""));
    svc.shutdown();
}

/// The sharded tier samples across shards: exports aggregate every
/// shard's ring, and per-shard Prometheus series stay distinct.
#[test]
fn sharded_tier_exports_traces_and_metrics_across_shards() {
    let tier = ShardedService::new(TierConfig {
        shards: 2,
        shard: ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });
    let alice = tier.add_tenant("alice", example_2_2()).unwrap();
    let bob = tier.add_tenant("bob", example_2_2()).unwrap();
    for tenant in [alice, bob] {
        tier.explain(
            tenant,
            ExplainRequest::why_so(query(), vec![Value::str("a2")]),
        )
        .unwrap();
    }
    let traces = tier.recent_traces();
    assert_eq!(traces.len(), 2);
    for trace in &traces {
        assert_eq!(trace.outcome, "ok");
        assert!(trace.shard < 2, "shard index recorded");
    }
    let jsonl = tier.export_traces();
    assert_eq!(jsonl.lines().count(), 2, "one JSON object per trace");
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
    let prom = tier.export_metrics();
    assert!(prom.contains("shard=\"0\"") && prom.contains("shard=\"1\""));
    assert_eq!(
        prom.matches("# TYPE causality_requests_total").count(),
        1,
        "one TYPE line per metric, not per shard"
    );
    tier.shutdown();
}

/// A request rejected by admission control still finishes its trace,
/// with the `overloaded` outcome.
#[test]
fn rejected_requests_finish_their_traces() {
    let tier = ShardedService::new(TierConfig {
        shards: 1,
        admission_limit: 1,
        shard: ServiceConfig {
            workers: 1,
            batch_max: 1,
            ..ServiceConfig::default()
        },
        ..TierConfig::default()
    });
    let t = tier.add_tenant("hot", example_2_2()).unwrap();
    tier.inject_delay(|_| Some(Duration::from_millis(50)));
    let req = ExplainRequest::why_so(query(), vec![Value::str("a2")]);
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..16 {
        match tier.submit(t, req.clone()) {
            Ok(pending) => accepted.push(pending),
            Err(ServiceError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0);
    for pending in accepted {
        pending.wait().unwrap();
    }
    let overloaded: Vec<_> = tier
        .recent_traces()
        .into_iter()
        .filter(|t| t.outcome == "overloaded")
        .collect();
    assert_eq!(overloaded.len() as u64, rejected, "every reject is traced");
    for trace in &overloaded {
        let chain: Vec<&str> = trace.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(
            !chain.contains(&"worker_dequeue"),
            "a rejected job never reaches a worker: {chain:?}"
        );
    }
    tier.shutdown();
}
