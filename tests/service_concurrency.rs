//! Concurrency integration test for the explanation service: N writer
//! threads publish snapshots while M reader threads explain, and the whole
//! scenario must finish — deadlock-free — under a hard timeout.
//!
//! The timeout guard runs the scenario on a helper thread and fails the
//! test if it does not signal completion in time, so a deadlock in the
//! worker pool / snapshot store shows up as a test failure rather than a
//! hung CI job.

use causality::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const WORKERS: usize = 4;
const WRITERS: usize = 3;
const READERS: usize = 6;
const WRITES_PER_WRITER: usize = 15;
const READS_PER_READER: usize = 25;
const HARD_TIMEOUT: Duration = Duration::from_secs(120);

/// Run `scenario` on a helper thread; panic if it exceeds the timeout.
fn with_deadline(scenario: impl FnOnce() + Send + 'static) {
    use std::sync::mpsc::RecvTimeoutError;
    let (done_tx, done_rx) = mpsc::channel();
    let runner = std::thread::spawn(move || {
        scenario();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(HARD_TIMEOUT) {
        // Completed, or panicked (dropping its sender): join either way
        // and re-raise the real assertion failure with its own message.
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            if let Err(payload) = runner.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("service concurrency scenario exceeded {HARD_TIMEOUT:?} — deadlock?")
        }
    }
}

fn seed_database() -> Database {
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y"]));
    for (x, y) in [("a1", "a5"), ("a2", "a1"), ("a3", "a3"), ("a4", "a3")] {
        db.insert_endo(r, vec![Value::str(x), Value::str(y)]);
    }
    for y in ["a1", "a2", "a3", "a4"] {
        db.insert_endo(s, vec![Value::str(y)]);
    }
    db
}

#[test]
fn writers_and_readers_make_progress_without_deadlock() {
    with_deadline(|| {
        let svc = Arc::new(CausalityService::with_config(
            seed_database(),
            ServiceConfig {
                workers: WORKERS,
                queue_capacity: 16,
                batch_max: 8,
                cache_capacity: 256,
                cached_versions: 3,
                rank_parallelism: 2,
                ..ServiceConfig::default()
            },
        ));
        let query = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let served = Arc::new(AtomicU64::new(0));
        let max_version_seen = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            // Writers: copy-on-write updates, each publishing a version
            // that adds a fresh joinable pair R(wN_i, bN_i), S(bN_i).
            for w in 0..WRITERS {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for i in 0..WRITES_PER_WRITER {
                        let version = svc.update(|db| {
                            let r = db.relation_id("R").unwrap();
                            let s = db.relation_id("S").unwrap();
                            let x = Value::str(format!("w{w}_{i}"));
                            let b = Value::str(format!("b{w}_{i}"));
                            db.insert_endo(r, vec![x, b.clone()]);
                            db.insert_endo(s, vec![b]);
                        });
                        assert!(version >= 2, "published versions are post-seed");
                    }
                });
            }
            // Readers: a mix of Why-So, Why-No, and top-k requests against
            // whatever snapshot is current when a worker picks them up.
            for rdr in 0..READERS {
                let svc = Arc::clone(&svc);
                let query = query.clone();
                let served = Arc::clone(&served);
                let max_version_seen = Arc::clone(&max_version_seen);
                scope.spawn(move || {
                    let answers = ["a2", "a3", "a4"];
                    for i in 0..READS_PER_READER {
                        let answer = vec![Value::str(answers[(rdr + i) % answers.len()])];
                        let request = match i % 3 {
                            0 => ExplainRequest::why_so(query.clone(), answer),
                            1 => ExplainRequest::rank_top_k(query.clone(), answer, 2),
                            _ => ExplainRequest::why_no(query.clone(), answer),
                        };
                        let resp = svc.submit(request).unwrap().wait().unwrap();
                        let version = resp.snapshot_version;
                        max_version_seen.fetch_max(version, Ordering::SeqCst);
                        let explanation = resp.result.expect("explain computation succeeds");
                        for cause in &explanation.causes {
                            assert!(
                                cause.rho > 0.0 && cause.rho <= 1.0,
                                "ρ ∈ (0, 1] for every served cause"
                            );
                        }
                        served.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });

        let total = (READERS * READS_PER_READER) as u64;
        assert_eq!(served.load(Ordering::SeqCst), total, "no request lost");
        let final_version = 1 + (WRITERS * WRITES_PER_WRITER) as u64;
        let stats = svc.stats();
        assert_eq!(
            stats.snapshot_version, final_version,
            "every writer update published a version"
        );
        assert_eq!(stats.requests, total);
        assert_eq!(stats.batched_requests, total);
        assert!(
            max_version_seen.load(Ordering::SeqCst) >= 1,
            "readers observed published snapshots"
        );

        // Shutdown drains and joins cleanly (a second deadlock hazard).
        Arc::try_unwrap(svc)
            .unwrap_or_else(|_| panic!("all scoped users done"))
            .shutdown();
    });
}

#[test]
fn pinned_snapshots_survive_heavy_publishing() {
    with_deadline(|| {
        let svc = Arc::new(CausalityService::new(seed_database()));
        let pinned = svc.snapshot();
        let before = pinned.tuple_count();

        std::thread::scope(|scope| {
            for _ in 0..4 {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for i in 0..20 {
                        svc.update(|db| {
                            let s = db.relation_id("S").unwrap();
                            db.insert_endo(s, vec![Value::int(1000 + i)]);
                        });
                    }
                });
            }
        });

        assert_eq!(pinned.version(), 1);
        assert_eq!(pinned.tuple_count(), before, "pinned snapshot immutable");
        assert_eq!(svc.stats().snapshot_version, 81);
        // 20 distinct values inserted by 4 writers each: dedup keeps 20.
        let s = svc.snapshot().relation_id("S").unwrap();
        assert_eq!(svc.snapshot().relation(s).len(), 4 + 20);
    });
}
