//! Offline stand-in for the parts of the [`rand`] crate this workspace
//! uses: `StdRng::seed_from_u64`, the `Rng` sampling methods
//! (`gen_range`, `gen_bool`, `gen`), and `SliceRandom::choose_multiple`.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! keeps the public API source-compatible. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, deterministic
//! under a fixed seed, and *not* intended to be bit-compatible with the
//! real `rand::rngs::StdRng`.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        self.gen::<f64>() < p
    }

    /// A sample from the standard distribution of `T`
    /// (`f64` uniform in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// A uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Rngs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (API stand-in for
    /// `rand::rngs::StdRng`; the stream differs from the real one).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding procedure for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Namespace mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// `amount` distinct elements, uniformly without replacement
        /// (fewer if the slice is shorter than `amount`).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let items: Vec<usize> = (0..10).collect();
        for _ in 0..100 {
            let picked: Vec<usize> = items.choose_multiple(&mut rng, 3).copied().collect();
            assert_eq!(picked.len(), 3);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicates in {picked:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
