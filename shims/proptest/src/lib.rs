//! Offline stand-in for the parts of the [`proptest`] property-testing
//! framework this workspace uses: the `proptest! {}` macro with
//! `#![proptest_config(...)]`, integer-range and tuple strategies,
//! `any::<T>()`, `prop::collection::{vec, btree_set}`, and the
//! `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! keeps `tests/property_tests.rs` source-compatible. It runs the
//! configured number of random cases from a seed derived from the test
//! name (deterministic across runs) and reports the failing case's
//! inputs on panic. It does **not** shrink failing inputs.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count the runner actually uses: the `PROPTEST_CASES`
    /// environment variable when set and parseable, else the configured
    /// count. Upstream proptest reads the variable only in
    /// `Config::default()`; this shim lets it override explicit
    /// `with_cases` too, so CI can dial every property up or down with
    /// one knob.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.cases)
    }
}

/// The deterministic RNG driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from a test name: the same test always sees the same
    /// case sequence (no shrinking, so reproducibility is the next
    /// best debugging aid).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// (generation only — no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident / $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u8..2) == 1
    }
}

macro_rules! impl_arbitrary_for_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_for_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Combinator namespace, mirroring the `proptest::prop` re-export.
pub mod prop {
    /// Collection strategies, mirroring `proptest::collection`.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for `Vec`s with sizes drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `Vec` of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.start..self.size.end);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `BTreeSet` of `element` values with *at most* the drawn
        /// size (duplicate draws collapse, as in real `proptest` when
        /// the element domain is small).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            assert!(size.start < size.end, "empty size range");
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.start..self.size.end);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The usual imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Assert inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the subset the workspace uses: an optional leading
/// `#![proptest_config(...)]`, then `#[test]` functions whose arguments
/// are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.resolved_cases();
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    // Render inputs up front so they survive a body
                    // that consumes its bindings.
                    let mut __case_desc = String::new();
                    $(
                        __case_desc.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &$arg,
                        ));
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            __case + 1,
                            __cases,
                            stringify!($name),
                            __case_desc,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(2u8..9), &mut rng);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_name("tuples");
        let (a, b, c) = Strategy::generate(&(0u8..3, 0u32..5, any::<bool>()), &mut rng);
        assert!(a < 3);
        assert!(b < 5);
        let _: bool = c;
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_name("collections");
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u8..4, 1..6), &mut rng);
            assert!((1..6).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0u32..100, 2..5), &mut rng);
            assert!(s.len() < 5);
        }
    }

    #[test]
    fn env_knob_overrides_configured_cases() {
        let cfg = ProptestConfig::with_cases(7);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.resolved_cases(), 7);
        std::env::set_var("PROPTEST_CASES", "3");
        assert_eq!(cfg.resolved_cases(), 3);
        std::env::set_var("PROPTEST_CASES", "not a number");
        assert_eq!(cfg.resolved_cases(), 7);
        std::env::remove_var("PROPTEST_CASES");
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        let sa = Strategy::generate(&prop::collection::vec(0u64..1000, 3..4), &mut a);
        let sb = Strategy::generate(&prop::collection::vec(0u64..1000, 3..4), &mut b);
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself drives cases and bindings.
        #[test]
        fn macro_binds_and_iterates(xs in prop::collection::vec(0u8..10, 0..5), flag in any::<bool>()) {
            prop_assert!(xs.len() < 5);
            let _ = flag;
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
