//! Offline stand-in for the parts of the [`criterion`] benchmark
//! harness this workspace uses: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup` configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`),
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and
//! `BenchmarkId`.
//!
//! The build environment has no crates.io access, so this in-tree shim
//! keeps the workspace benches source-compatible. It is a *real*
//! (if minimal) harness: it warms up, measures wall-clock time over the
//! configured window, and prints a `bench-id  mean time/iter  iters`
//! line per benchmark. It does not do statistical outlier analysis,
//! HTML reports, or baseline comparison.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Measurement strategies, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the only one the shim offers).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    /// When true (`--test`), run each benchmark body once and skip timing.
    test_mode: bool,
    /// When true (`--list`), only print benchmark names.
    list_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut list_mode = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--list" => list_mode = true,
                // Harness flags cargo forwards that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "--exact" | "--ignored"
                | "--include-ignored" => {}
                // Known value-taking criterion flags: consume the value.
                "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--sample-size"
                | "--warm-up-time"
                | "--measurement-time"
                | "--profile-time"
                | "--significance-level"
                | "--noise-threshold"
                | "--color"
                | "--format"
                | "--output-format" => {
                    let _ = args.next_if(|v| !v.starts_with("--"));
                }
                // Any other flag: ignore it, but never swallow a
                // following positional (it may be the filter).
                s if s.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            filter,
            test_mode,
            list_mode,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            _measurement: PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function("", f);
        group.finish();
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target wall-clock window for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full_id = self.full_id(&id.into_benchmark_id());
        self.run(&full_id, &mut f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = self.full_id(&id);
        self.run(&full_id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (drop-equivalent; kept for API parity).
    pub fn finish(self) {}

    fn full_id(&self, id: &BenchmarkId) -> String {
        if id.0.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.0)
        }
    }

    fn run(&mut self, full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.criterion.matches(full_id) {
            return;
        }
        if self.criterion.list_mode {
            println!("{full_id}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            budget: if self.criterion.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            warm_up: if self.criterion.test_mode {
                Duration::ZERO
            } else {
                self.warm_up_time
            },
            // --test means "run each body once", regardless of the
            // group's configured sample size.
            samples: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{full_id}: test ok");
        } else if bencher.iters > 0 {
            let per_iter = bencher.total.as_nanos() / u128::from(bencher.iters.max(1));
            println!(
                "{full_id:<48} {:>12} ns/iter  ({} iters)",
                per_iter, bencher.iters
            );
        }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly within the measurement budget, recording
    /// wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up phase: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        // Measurement: at least `samples` iterations, stop once the
        // budget is exhausted.
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.samples as u64 && start.elapsed() >= self.budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Identifies one benchmark inside a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for ergonomic `bench_function` calls.
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_criterion() -> Criterion {
        // Bypass Default to avoid reading the test harness's CLI args.
        Criterion {
            filter: None,
            test_mode: true,
            list_mode: false,
        }
    }

    #[test]
    fn bench_with_input_runs_body() {
        let mut c = quiet_criterion();
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| n * 2);
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            budget: Duration::ZERO,
            warm_up: Duration::ZERO,
            samples: 5,
            total: Duration::ZERO,
            iters: 0,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert!(b.iters >= 5);
        assert_eq!(b.iters, calls);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("flow".into()),
            test_mode: true,
            list_mode: false,
        };
        assert!(c.matches("fig4_alg1_flow/n100_k/2"));
        assert!(!c.matches("fig1_query_eval/200"));
    }
}
