//! # causality — query answers explained by causes and responsibilities
//!
//! A complete, from-scratch Rust reproduction of
//!
//! > Alexandra Meliou, Wolfgang Gatterbauer, Katherine F. Moore, Dan Suciu.
//! > *The Complexity of Causality and Responsibility for Query Answers and
//! > non-Answers.* (VLDB 2010 / arXiv:1009.2021)
//!
//! Given a database partitioned into *endogenous* (suspect) and
//! *exogenous* (context) tuples, this library answers **Why-So** ("why is
//! this tuple an answer?") and **Why-No** ("why is it not?") questions by
//! computing the *causes* of the (non-)answer and ranking them by
//! *responsibility* `ρ = 1/(1 + |Γ|)`, where `Γ` is a minimum contingency
//! set (Def. 2.1/2.3 of the paper).
//!
//! The workspace implements every system the paper touches:
//!
//! | crate | contents |
//! |---|---|
//! | [`engine`] | relational storage, conjunctive queries, valuations, counterfactual masks |
//! | [`lineage`] | DNF lineage, n-lineage, why-provenance, provenance semirings |
//! | [`datalog`] | stratified Datalog with negation + SQL rendering (Theorem 3.4's target language) |
//! | [`graph`] | max-flow (Edmonds–Karp, Dinic), hypergraphs, consecutive-ones, vertex-cover oracles |
//! | [`core`] | causes (Thm. 3.2), FO cause programs (Thm. 3.4), responsibility (Algorithm 1, exact, Why-No), the dichotomy classifier (Cor. 4.14) |
//! | [`reductions`] | executable hardness proofs: 3SAT rings, vertex cover, the LOGSPACE chain |
//! | [`datagen`] | IMDB-schema synthesis (Fig. 1/2), chain/triangle workloads, Zipf |
//! | [`service`] | sharded explanation serving: admission control, deadlines, per-shard worker pools and caches, latency histograms |
//! | [`telemetry`] | std-only observability: request-trace spans, a named metrics registry (Prometheus-text/JSONL exporters), trace rings, slow-log |
//!
//! # Quickstart
//!
//! ```
//! use causality::prelude::*;
//!
//! // A database: R(x,y) and S(y), all tuples endogenous.
//! let mut db = Database::new();
//! let r = db.add_relation(Schema::new("R", &["x", "y"]));
//! let s = db.add_relation(Schema::new("S", &["y"]));
//! db.insert_endo(r, vec![Value::from("a2"), Value::from("a1")]);
//! db.insert_endo(s, vec![Value::from("a1")]);
//!
//! // Why is a2 an answer of q(x) :- R(x,y), S(y)?
//! let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
//! let explanation = Explainer::new(&db, &q).why(&[Value::from("a2")]).unwrap();
//! assert_eq!(explanation.causes.len(), 2);
//! assert!(explanation.causes.iter().all(|c| c.rho == 1.0));
//! ```
//!
//! See `examples/` for the paper's IMDB scenario, a Why-No scenario, and
//! an interactive complexity classifier, and `crates/bench` for the
//! experiment harnesses regenerating every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use causality_core as core;
pub use causality_datagen as datagen;
pub use causality_datalog as datalog;
pub use causality_engine as engine;
pub use causality_graph as graph;
pub use causality_lineage as lineage;
pub use causality_reductions as reductions;
pub use causality_service as service;
pub use causality_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use causality_core::causes::{why_no_causes, why_so_causes, CauseSet};
    pub use causality_core::dichotomy::classify::{classify_why_so, Complexity};
    pub use causality_core::explain::{ExplainMode, Explainer, Explanation};
    pub use causality_core::ranking::{
        rank_why_no, rank_why_so, rank_why_so_parallel, Method, RankConfig, RankStats, RankedTopK,
    };
    pub use causality_core::resp::approx::{
        anytime_min_contingency, AnytimeOutcome, ApproxBudget, RhoBounds,
    };
    pub use causality_core::resp::{why_no_responsibility, why_so_responsibility, Responsibility};
    pub use causality_engine::{
        evaluate, evaluate_with_cache, ConjunctiveQuery, Database, EndoMask, RelId, RelVersion,
        Schema, SharedIndexCache, Snapshot, SnapshotStore, Tuple, TupleRef, Value,
    };
    pub use causality_lineage::{lineage, n_lineage};
    pub use causality_service::{
        BreakerConfig, BreakerState, CausalityService, Clock, ExplainKind, ExplainRequest,
        ExplainResponse, FaultKind, FaultPlan, FrontendStats, HealthState, ManualClock,
        RetryPolicy, ServiceConfig, ServiceError, ServiceStats, ShardedService, SupervisorConfig,
        SystemClock, TenantId, TierConfig, TierStats,
    };
    pub use causality_telemetry::{RequestTrace, Stage, TelemetryConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let db = causality_engine::database::example_2_2();
        let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").unwrap();
        let result = evaluate(&db, &q).unwrap();
        assert_eq!(result.answers.len(), 3);
        let grounded = q.ground(&[Value::from("a3")]);
        let causes = why_so_causes(&db, &grounded).unwrap();
        assert!(!causes.is_empty());
        let c = classify_why_so(
            &ConjunctiveQuery::parse("h2 :- R^n(x, y), S^n(y, z), T^n(z, x)").unwrap(),
        )
        .unwrap();
        assert!(!c.is_ptime());
    }
}
