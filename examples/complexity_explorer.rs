//! Interactive dichotomy classifier (Fig. 3 + Corollary 4.14).
//!
//! Run with `cargo run --example complexity_explorer` to classify the
//! paper's catalogue of queries, or pass your own marked queries:
//!
//! ```text
//! cargo run --example complexity_explorer -- "q :- R^n(x,y), S^x(y,z), T^n(z,x)"
//! ```
//!
//! Atoms are marked `^n` (endogenous) or `^x` (exogenous). The verdict
//! comes with a machine-checkable certificate: a weakening sequence plus
//! linear order (PTIME) or a rewrite chain reaching one of the canonical
//! hard queries h1*, h2*, h3* (NP-hard).

use causality::prelude::*;
use causality_core::dichotomy::classify::classify_why_no;

fn classify_and_print(text: &str) {
    let q = match ConjunctiveQuery::parse(text) {
        Ok(q) => q,
        Err(e) => {
            println!("{text}\n  parse error: {e}\n");
            return;
        }
    };
    match classify_why_so(&q) {
        Ok(Complexity::PTime(cert)) => {
            println!("{q}\n  Why-So responsibility: PTIME (weakly linear)");
            if cert.steps.is_empty() {
                println!("  already linear; witness order: {:?}", cert.linear_order);
            } else {
                for step in &cert.steps {
                    println!("  weaken: {step:?}");
                }
                println!("  weakened to: {}", cert.weakened.render());
                println!("  linear order: {:?}", cert.linear_order);
            }
        }
        Ok(Complexity::NpHard(cert)) => {
            println!("{q}\n  Why-So responsibility: NP-hard");
            for step in &cert.steps {
                println!("  rewrite: {step}");
            }
            println!("  reached canonical hard query {}", cert.target.name());
        }
        Ok(other) => println!("{q}\n  Why-So responsibility: {}", other.label()),
        Err(e) => println!("{q}\n  error: {e}"),
    }
    println!("  Why-No responsibility: {}", classify_why_no(&q));
    println!("  causality (Why-So and Why-No): PTIME, FO-expressible (Thm. 3.2/3.4)\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for text in &args {
            classify_and_print(text);
        }
        return;
    }
    println!("=== The paper's complexity landscape (Fig. 3 / Sect. 4) ===\n");
    for text in [
        // Linear / weakly linear (PTIME).
        "chain2 :- R^n(x, y), S^n(y, z)",
        "fig5a :- A^n(x), S1^x(x, v), S2^x(v, y), R^n(y, u), S3^x(y, z), T^x(z, w), B^n(z)",
        "ex412a :- R^n(x, y), S^x(y, z), T^n(z, x)",
        "ex412b :- R^n(x, y), S^n(y, z), T^n(z, x), V^n(x)",
        // The canonical hard queries (Theorem 4.1).
        "h1 :- A^n(x), B^n(y), C^n(z), W^x(x, y, z)",
        "h2 :- R^n(x, y), S^n(y, z), T^n(z, x)",
        "h3 :- A^n(x), B^n(y), C^n(z), R^x(x, y), S^x(y, z), T^x(z, x)",
        // Example 4.8's 4-cycle.
        "cycle4 :- R^n(x, y), S^n(y, z), T^n(z, u), K^n(u, x)",
        // Self-joins (Prop. 4.16 / open).
        "sj :- R^n(x), S^x(x, y), R^n(y)",
        "open :- R^n(x, y), R^n(y, z)",
    ] {
        classify_and_print(text);
    }
}
