//! Quickstart: causes and responsibilities on the paper's Example 2.2.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Builds the instance of Example 2.2 (R(x,y), S(y), all endogenous),
//! evaluates `q(x) :- R(x,y), S(y)`, and explains every answer: the
//! causes (Def. 2.1), their responsibilities (Def. 2.3), and a minimum
//! contingency witnessing each.

use causality::prelude::*;

fn main() {
    // The database of Example 2.2.
    let db = causality::engine::database::example_2_2();
    println!("Database:\n{db}");

    let q = ConjunctiveQuery::parse("q(x) :- R(x, y), S(y)").expect("query parses");
    println!("Query: {q}\n");

    let result = evaluate(&db, &q).expect("evaluation succeeds");
    println!(
        "Answers: {}",
        result
            .answers
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    let explainer = Explainer::new(&db, &q);
    for answer in &result.answers {
        let explanation = explainer
            .why(answer.values())
            .expect("explanation succeeds");
        println!("\n{explanation}");
        for cause in &explanation.causes {
            if !cause.counterfactual {
                println!(
                    "        (remove {} to make {}{} counterfactual)",
                    cause.contingency.join(", "),
                    cause.relation,
                    cause.values
                );
            }
        }
    }

    // The lineage view of the same facts (Sect. 3).
    let grounded = q.ground(&[Value::from("a4")]);
    let phi = causality::lineage::lineage(&db, &grounded).expect("lineage");
    println!(
        "\nLineage of a4: {}",
        phi.display_with(|t| format!("X[{}{}]", db.relation(t.rel).name(), db.tuple(t)))
    );
}
