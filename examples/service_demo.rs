//! Serving explanations concurrently: the Fig. 1/2 IMDB scenario through
//! `causality_service`.
//!
//! ```sh
//! cargo run --example service_demo
//! ```
//!
//! Starts a 4-worker service over the Fig. 2a instance, asks the paper's
//! question ("why is Musical an answer of the Burton-genre query?") from
//! several client threads, shows the responsibility cache warming up,
//! then publishes a new snapshot (Tim Burton's *Sweeney Todd* removed)
//! and shows the explanation tracking the new version while the old one
//! keeps serving pinned readers. A later section turns on the
//! explanation slow-log and contrasts the per-stage trace of an easy
//! (weakly linear, PTIME) request with a hard (non-weakly-linear,
//! NP-hard) triangle request. The final section shows the hardness
//! router in action: a dense NP-hard instance under a 1 ms deadline is
//! answered approximately, with certified `[lower, upper]` brackets on
//! every cause's responsibility instead of a deadline error.

use causality::prelude::*;
use causality_datagen::imdb::{burton_genre_query, fig2a_instance};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let (db, refs) = fig2a_instance();
    let query = burton_genre_query();
    let musical = vec![Value::from("Musical")];

    let svc = Arc::new(CausalityService::with_config(
        db,
        ServiceConfig {
            workers: 4,
            // Fresh top-k rankings fan their per-cause responsibility
            // solves over 2 threads each.
            rank_parallelism: 2,
            ..ServiceConfig::default()
        },
    ));

    // --- 1. A burst of identical questions from concurrent clients. ----
    println!("== Why is (Musical) an answer? — 8 concurrent clients ==\n");
    std::thread::scope(|scope| {
        for client in 0..8 {
            let svc = Arc::clone(&svc);
            let query = query.clone();
            let musical = musical.clone();
            scope.spawn(move || {
                let resp = svc
                    .explain(ExplainRequest::why_so(query, musical))
                    .expect("service is running");
                let explanation = resp.result.expect("query explains");
                if client == 0 {
                    println!("{explanation}");
                }
            });
        }
    });
    let stats = svc.stats();
    println!(
        "served {} requests in {} batches: {} computed, {} cache hits, {} coalesced ({}% hit rate)\n",
        stats.requests,
        stats.batches,
        stats.cache_misses,
        stats.cache_hits,
        stats.coalesced,
        (stats.hit_rate() * 100.0).round(),
    );

    // --- 2. Rank-top-k and Why-No requests share the same pool. --------
    let top2 = svc
        .explain(ExplainRequest::rank_top_k(
            query.clone(),
            musical.clone(),
            2,
        ))
        .unwrap()
        .expect_explanation();
    println!("== Top-2 causes by responsibility ==\n{top2}");

    // --- 2b. Failure isolation: a panicking job costs one response. ----
    // Chaos hook: the next Why-No request panics inside its worker; the
    // pool catches it, answers with an error, and keeps serving.
    svc.inject_fault(|req| matches!(req.kind, ExplainKind::WhyNo));
    let blast = svc
        .explain(ExplainRequest::why_no(query.clone(), musical.clone()))
        .unwrap();
    println!(
        "== Injected fault: Why-No request answered with an error, pool alive ==\n{}\n",
        blast
            .result
            .expect_err("the chaos hook panicked this request")
    );
    svc.clear_faults();

    // --- 3. Publish a new snapshot: Sweeney Todd becomes exogenous -----
    // (context rather than suspect), so it can no longer be a cause.
    let sweeney = refs.sweeney;
    let version = svc.update(move |db| {
        let movie = sweeney.rel;
        let tuple = db.relation(movie).tuple(sweeney.row).clone();
        db.relation_mut(movie)
            .set_endogenous_where(|t| t == &tuple, false);
    });
    println!("== Published snapshot v{version}: Sweeney Todd now exogenous ==\n");

    let fresh = svc
        .explain(ExplainRequest::why_so(query.clone(), musical.clone()))
        .unwrap();
    println!(
        "fresh explanation against v{} (cache hit: {}):\n",
        fresh.snapshot_version, fresh.cache_hit
    );
    println!("{}", fresh.expect_explanation());

    let stats = svc.stats();
    println!(
        "final stats: version {}, {} requests, hit rate {:.0}%, \
         {} join indexes held, {} evicted (per-relation keying: only the \
         touched relation's indexes can ever be invalidated); \
         {} top-k rankings computed, {} candidates pruned by the top-k \
         screen, {} panics caught without losing a worker",
        stats.snapshot_version,
        stats.requests,
        stats.hit_rate() * 100.0,
        stats.index_entries,
        stats.index_evictions,
        stats.rank_tasks,
        stats.topk_pruned,
        stats.panics_caught,
    );

    // --- 4. Observability: per-stage traces and the slow-log. ----------
    // An easy (weakly linear → PTIME responsibility) request next to a
    // hard one (the non-weakly-linear triangle of Cor. 4.14 → NP-hard),
    // with the hard request's worker artificially stalled so it
    // overruns the 5 ms slow threshold.
    println!("\n== Request tracing: easy (PTIME) vs hard (NP-hard) ==\n");
    let mut db = Database::new();
    let r = db.add_relation(Schema::new("R", &["x", "y"]));
    let s = db.add_relation(Schema::new("S", &["y", "z"]));
    let t = db.add_relation(Schema::new("T", &["z", "x"]));
    db.insert_endo(r, vec![Value::int(1), Value::int(2)]);
    db.insert_endo(s, vec![Value::int(2), Value::int(3)]);
    db.insert_endo(t, vec![Value::int(3), Value::int(1)]);
    let obs = CausalityService::with_config(
        db,
        ServiceConfig {
            workers: 1,
            telemetry: TelemetryConfig {
                slow_latency: Some(Duration::from_millis(5)),
                ..TelemetryConfig::default()
            },
            ..ServiceConfig::default()
        },
    );

    let easy = ConjunctiveQuery::parse("e(x) :- R(x, y)").unwrap();
    obs.explain(ExplainRequest::why_so(easy, vec![Value::int(1)]))
        .unwrap()
        .result
        .expect("single-atom query explains");

    let hard = ConjunctiveQuery::parse("h2 :- R(x, y), S(y, z), T(z, x)").unwrap();
    obs.inject_delay(|_| Some(Duration::from_millis(20)));
    obs.explain(ExplainRequest::why_so(hard, vec![]))
        .unwrap()
        .result
        .expect("the triangle has a satisfying valuation");

    for trace in obs.recent_traces() {
        println!(
            "{} · dichotomy {} · {} relations · ρ_max {:.2} · total {} µs",
            trace.kind, trace.dichotomy, trace.relations, trace.rho_max, trace.total_us
        );
        for span in &trace.stages {
            println!(
                "    {:<16} +{:>6} µs   {:>6} µs",
                span.stage.as_str(),
                span.start_us,
                span.dur_us
            );
        }
        println!();
    }

    let slow = obs.slow_log_records();
    println!(
        "slow-log: {} record(s) over the 5 ms threshold (the stalled \
         NP-hard request; the PTIME request stayed under it)",
        slow.len()
    );
    for rec in &slow {
        let solve = rec
            .stage(Stage::KernelSolve)
            .map(|span| span.dur_us)
            .unwrap_or(0);
        println!(
            "    seq {} · {} · dichotomy {} · total {} µs · kernel_solve {} µs",
            rec.seq, rec.outcome, rec.dichotomy, rec.total_us, solve
        );
    }

    // --- 5. Hardness-aware routing: NP-hard under a 1 ms deadline. -----
    // A dense non-weakly-linear triangle instance whose exact min
    // hitting set would blow any interactive budget. With a deadline on
    // the request, the router sends it to the anytime tier: the answer
    // arrives inside the budget as certified [lower, upper] brackets on
    // ρ instead of a DeadlineExceeded error.
    println!("\n== Hardness-aware routing: NP-hard request, 1 ms deadline ==\n");
    let inst = causality_datagen::hard_instances::dense_triangles(6, 150, 42);
    let anytime = CausalityService::with_config(
        inst.db.clone(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let answer = anytime
        .submit_with_deadline(
            ExplainRequest::why_so(inst.query.clone(), vec![]),
            Duration::from_millis(1),
        )
        .unwrap()
        .wait()
        .unwrap()
        .expect_explanation();
    match answer.mode {
        ExplainMode::Approximate {
            bounds,
            budget_spent_us,
            refinements,
        } => println!(
            "answered approximately: anytime solves spent {budget_spent_us} µs \
             across {} cause(s), {refinements} refinement level(s); max-ρ \
             cause certified in [{:.4}, {:.4}]",
            answer.causes.len(),
            bounds.lower,
            bounds.upper
        ),
        ExplainMode::Exact => unreachable!("hard + deadline routes to the anytime tier"),
    }
    for cause in answer.causes.iter().take(3) {
        let bounds = cause.bounds.expect("approximate causes carry bounds");
        println!(
            "    {}{:?} · ρ ∈ [{:.4}, {:.4}]{}",
            cause.relation,
            cause.tuple,
            bounds.lower,
            bounds.upper,
            if bounds.is_exact() {
                " (collapsed)"
            } else {
                ""
            }
        );
    }
    let stats = anytime.stats();
    println!(
        "\nstats: {} approximate answer(s), {} deadline miss(es) — the \
         anytime tier absorbs what would otherwise be a timeout",
        stats.approx_requests, stats.deadline_misses
    );
    anytime.shutdown();
}
