//! Serving explanations concurrently: the Fig. 1/2 IMDB scenario through
//! `causality_service`.
//!
//! ```sh
//! cargo run --example service_demo
//! ```
//!
//! Starts a 4-worker service over the Fig. 2a instance, asks the paper's
//! question ("why is Musical an answer of the Burton-genre query?") from
//! several client threads, shows the responsibility cache warming up,
//! then publishes a new snapshot (Tim Burton's *Sweeney Todd* removed)
//! and shows the explanation tracking the new version while the old one
//! keeps serving pinned readers.

use causality::prelude::*;
use causality_datagen::imdb::{burton_genre_query, fig2a_instance};
use std::sync::Arc;

fn main() {
    let (db, refs) = fig2a_instance();
    let query = burton_genre_query();
    let musical = vec![Value::from("Musical")];

    let svc = Arc::new(CausalityService::with_config(
        db,
        ServiceConfig {
            workers: 4,
            // Fresh top-k rankings fan their per-cause responsibility
            // solves over 2 threads each.
            rank_parallelism: 2,
            ..ServiceConfig::default()
        },
    ));

    // --- 1. A burst of identical questions from concurrent clients. ----
    println!("== Why is (Musical) an answer? — 8 concurrent clients ==\n");
    std::thread::scope(|scope| {
        for client in 0..8 {
            let svc = Arc::clone(&svc);
            let query = query.clone();
            let musical = musical.clone();
            scope.spawn(move || {
                let resp = svc
                    .explain(ExplainRequest::why_so(query, musical))
                    .expect("service is running");
                let explanation = resp.result.expect("query explains");
                if client == 0 {
                    println!("{explanation}");
                }
            });
        }
    });
    let stats = svc.stats();
    println!(
        "served {} requests in {} batches: {} computed, {} cache hits, {} coalesced ({}% hit rate)\n",
        stats.requests,
        stats.batches,
        stats.cache_misses,
        stats.cache_hits,
        stats.coalesced,
        (stats.hit_rate() * 100.0).round(),
    );

    // --- 2. Rank-top-k and Why-No requests share the same pool. --------
    let top2 = svc
        .explain(ExplainRequest::rank_top_k(
            query.clone(),
            musical.clone(),
            2,
        ))
        .unwrap()
        .expect_explanation();
    println!("== Top-2 causes by responsibility ==\n{top2}");

    // --- 2b. Failure isolation: a panicking job costs one response. ----
    // Chaos hook: the next Why-No request panics inside its worker; the
    // pool catches it, answers with an error, and keeps serving.
    svc.inject_fault(|req| matches!(req.kind, ExplainKind::WhyNo));
    let blast = svc
        .explain(ExplainRequest::why_no(query.clone(), musical.clone()))
        .unwrap();
    println!(
        "== Injected fault: Why-No request answered with an error, pool alive ==\n{}\n",
        blast
            .result
            .expect_err("the chaos hook panicked this request")
    );
    svc.clear_faults();

    // --- 3. Publish a new snapshot: Sweeney Todd becomes exogenous -----
    // (context rather than suspect), so it can no longer be a cause.
    let sweeney = refs.sweeney;
    let version = svc.update(move |db| {
        let movie = sweeney.rel;
        let tuple = db.relation(movie).tuple(sweeney.row).clone();
        db.relation_mut(movie)
            .set_endogenous_where(|t| t == &tuple, false);
    });
    println!("== Published snapshot v{version}: Sweeney Todd now exogenous ==\n");

    let fresh = svc
        .explain(ExplainRequest::why_so(query.clone(), musical.clone()))
        .unwrap();
    println!(
        "fresh explanation against v{} (cache hit: {}):\n",
        fresh.snapshot_version, fresh.cache_hit
    );
    println!("{}", fresh.expect_explanation());

    let stats = svc.stats();
    println!(
        "final stats: version {}, {} requests, hit rate {:.0}%, \
         {} join indexes held, {} evicted (per-relation keying: only the \
         touched relation's indexes can ever be invalidated); \
         {} top-k rankings computed, {} candidates pruned by the top-k \
         screen, {} panics caught without losing a worker",
        stats.snapshot_version,
        stats.requests,
        stats.hit_rate() * 100.0,
        stats.index_entries,
        stats.index_evictions,
        stats.rank_tasks,
        stats.topk_pruned,
        stats.panics_caught,
    );
}
