//! A Why-No scenario from the paper's introduction: "What caused my
//! favorite undergrad student to not appear on the Dean's list this
//! year?"
//!
//! Run with `cargo run --example deans_list`.
//!
//! The Dean's list requires an honors-eligible enrollment and a top
//! grade. The real database (exogenous tuples) lacks some tuples; the
//! endogenous tuples are *candidate insertions* — tuple updates that
//! would put the student on the list (the paper delegates computing them
//! to Huang et al. [15]; here they are given). Why-No causality ranks
//! the repairs: counterfactual insertions (one missing fact) first.

use causality::prelude::*;

fn main() {
    let mut db = Database::new();
    let enrolled = db.add_relation(Schema::new("Enrolled", &["student", "program"]));
    let honors = db.add_relation(Schema::new("HonorsProgram", &["program"]));
    let grade = db.add_relation(Schema::new("TopGrade", &["student", "year"]));

    // The real database: what the registrar actually recorded.
    db.insert_exo(enrolled, vec![Value::from("alice"), Value::from("cs")]);
    db.insert_exo(honors, vec![Value::from("cs-honors")]);
    db.insert_exo(grade, vec![Value::from("bob"), Value::from(2010)]);

    // Candidate missing tuples (endogenous): plausible corrections.
    db.insert_endo(
        enrolled,
        vec![Value::from("alice"), Value::from("cs-honors")],
    );
    db.insert_endo(honors, vec![Value::from("cs")]);
    db.insert_endo(grade, vec![Value::from("alice"), Value::from(2010)]);

    let q = ConjunctiveQuery::parse(
        "deans_list(s) :- Enrolled(s, p), HonorsProgram(p), TopGrade(s, y)",
    )
    .expect("query parses");
    println!("Query: {q}\n");

    let result = evaluate(&db, &q).expect("evaluation succeeds");
    println!(
        "Current answers (over the real database plus nothing): {}",
        if result.answers.is_empty() {
            "—".to_string()
        } else {
            format!("{:?}", result.answers)
        }
    );

    let explanation = Explainer::new(&db, &q)
        .why_not(&[Value::from("alice")])
        .expect("why-not succeeds");
    println!("\n{explanation}");
    println!("Reading: every cause is a missing tuple; ρ = 1/(1 + further");
    println!("insertions needed). alice's missing TopGrade row must combine");
    println!("with one enrollment fix, so each repair tuple has ρ = 1/2;");
    println!("a repair set is visible in each cause's contingency:");
    for cause in &explanation.causes {
        println!(
            "  insert {}{}   together with {{{}}}",
            cause.relation,
            cause.values,
            cause.contingency.join(", ")
        );
    }
}
