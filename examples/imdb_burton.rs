//! The paper's running example (Fig. 1 / Fig. 2): why does the query
//! "genres of movies directed by Burton" return *Musical*?
//!
//! Run with `cargo run --example imdb_burton`.
//!
//! Uses the synthetic IMDB instance embedding the exact Fig. 2a lineage
//! (see DESIGN.md's substitution note), computes the causes of the
//! `Musical` answer and prints the Fig. 2b responsibility ranking.

use causality::datagen::imdb::{burton_genre_query, fig2a_instance};
use causality::prelude::*;

fn main() {
    let (db, refs) = fig2a_instance();
    let q = burton_genre_query();
    println!("Query (Fig. 1): {q}\n");

    let result = evaluate(&db, &q).expect("evaluation succeeds");
    println!(
        "Answers: {}",
        result
            .answers
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "\nLineage of Musical: {} derivations over {} base tuples",
        result.valuations.len(),
        db.tuple_count()
    );
    println!("Endogenous (suspect) tuples: Director and Movie rows only.\n");

    let explanation = Explainer::new(&db, &q)
        .why(&[Value::from("Musical")])
        .expect("explanation succeeds");

    println!("Responsibility ranking (Fig. 2b):");
    println!("{:>6}  {:<12} cause", "ρ", "relation");
    for cause in &explanation.causes {
        println!(
            "{:>6.2}  {:<12} {}",
            cause.rho, cause.relation, cause.values
        );
    }

    // The paper's two highlighted computations (Example 2.4):
    let sweeney = causality::core::resp::why_so_responsibility(
        &db,
        &q.ground(&[Value::from("Musical")]),
        refs.sweeney,
    )
    .expect("responsibility");
    println!(
        "\nSweeney Todd: ρ = {:.3} with minimum contingency {{{}}}",
        sweeney.rho,
        sweeney
            .min_contingency
            .unwrap_or_default()
            .iter()
            .map(|&t| format!("{}{}", db.relation(t.rel).name(), db.tuple(t)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let manon = causality::core::resp::why_so_responsibility(
        &db,
        &q.ground(&[Value::from("Musical")]),
        refs.manon,
    )
    .expect("responsibility");
    println!(
        "Manon Lescaut: ρ = {:.3} (needs {} removals — an uninteresting cause, \
         correctly ranked at the bottom)",
        manon.rho,
        manon.min_contingency.map(|g| g.len()).unwrap_or(0)
    );
}
