//! Parallel top-k responsibility ranking at the library level: the
//! Fig. 2 IMDB workload through `causality_core::ranking::parallel`.
//!
//! ```sh
//! cargo run --release --example rank_topk
//! ```
//!
//! Ranks the causes of the Musical answer on a scaled IMDB instance
//! three ways — the sequential loop, the multi-threaded fan-out, and
//! the pruned top-k screen — and shows all three agreeing bit for bit
//! while doing decreasing amounts of work.

use causality::prelude::*;
use causality_core::ranking::{rank_why_so_cached, rank_why_so_parallel, RankConfig};
use causality_datagen::imdb::{burton_genre_query, generate, ImdbConfig};
use std::time::Instant;

fn main() {
    // A few thousand movies around the Fig. 2a micro-instance: enough
    // data that each per-cause Algorithm-1 solve has real work to do.
    let (db, _) = generate(&ImdbConfig {
        directors: 400,
        movies: 2000,
        ..ImdbConfig::default()
    });
    let query = burton_genre_query().ground(&[Value::from("Musical")]);
    let cache = SharedIndexCache::new();
    // Prime the shared join indexes so the three timings below compare
    // ranking compute, not first-touch index builds.
    rank_why_so_cached(&db, &query, Method::Auto, Some(&cache)).unwrap();

    // Sequential reference: every candidate solved, one thread.
    let t0 = Instant::now();
    let sequential = rank_why_so_cached(&db, &query, Method::Auto, Some(&cache)).unwrap();
    let t_seq = t0.elapsed();
    println!(
        "sequential: ranked {} causes in {t_seq:?}",
        sequential.len()
    );

    // Fan-out: same candidates, sharded over 4 threads, same output.
    let cfg = RankConfig::with_parallelism(4);
    let t0 = Instant::now();
    let fanout = rank_why_so_parallel(&db, &query, &cfg, Some(&cache)).unwrap();
    let t_par = t0.elapsed();
    assert_eq!(fanout.causes, sequential, "bit-identical order");
    println!(
        "fan-out:    ranked {} causes on {} threads in {t_par:?}",
        fanout.causes.len(),
        fanout.stats.threads
    );

    // Top-k: only causes that can still enter the top 3 are solved.
    let cfg = RankConfig::with_parallelism(4).top_k(3);
    let t0 = Instant::now();
    let top3 = rank_why_so_parallel(&db, &query, &cfg, Some(&cache)).unwrap();
    let t_top = t0.elapsed();
    assert_eq!(top3.causes, sequential[..3], "top-3 is the same prefix");
    println!(
        "top-3:      solved {} of {} candidates ({} pruned by the upper-bound \
         screen) in {t_top:?}\n",
        top3.stats.computed, top3.stats.candidates, top3.stats.pruned
    );

    println!("ρ      cause (top 3 of the Fig. 2b-style table)");
    for rc in &top3.causes {
        let rel = db.relation(rc.tuple.rel);
        println!(
            "{:<6.3} {}{}{}",
            rc.responsibility.rho,
            rel.name(),
            db.tuple(rc.tuple),
            if rc.responsibility.is_counterfactual() {
                "  (counterfactual)"
            } else {
                ""
            }
        );
    }
}
